//! The incremental score-matrix engine.
//!
//! The reference solver re-scores the entire `M×N` matrix on every hill-
//! climbing sweep, making a round `O(M·N·S)` for `S` applied moves.
//! [`ScoreMatrix`] instead *caches* every cell and exploits the key
//! structural fact of the score function: applying a move `⟨v → h⟩` only
//! changes the overlay state (`committed`, `vm_count`, `placement[v]`) of
//! the VM's old host row and its new host row `h`. Every other cell —
//! including the rest of column `v` — is provably unchanged:
//!
//! * rows `r ∉ {old, h}` keep their `committed[r]`/`vm_count[r]`, and
//! * for column `v` itself, the `placement[v] == Some(r)` residency checks
//!   are `false` both before and after the move on those rows, so the
//!   move-in terms and the occupation maths are untouched.
//!
//! So `apply_move` dirties exactly two rows, and a sweep only pays to
//! rescore `2·N` cells plus a cheap per-column argmin maintenance step
//! instead of `M·N` fresh score evaluations.
//!
//! ## Per-column argmin maintenance
//!
//! The solver's candidate ordering key is `(Δ, to, column, row)` (see
//! [`crate::solver`]). Within one column the current cost `from` is a
//! constant, so ordering candidates by `(Δ, to)` is the same as ordering
//! them by `to` alone — which means the per-column best cell
//! ([`ScoreMatrix`]'s `col_best`) is *independent of the column's current
//! placement cost* and can be maintained incrementally:
//!
//! * if the cached best of a column sits on a changed row, the column is
//!   rescanned in full (`O(M)`) — this also covers the moved column
//!   itself, because its new placement row is always one of the two
//!   dirtied rows;
//! * otherwise the cached best is still valid and merely has to be
//!   *challenged* by the (at most two) changed rows — `O(#dirty)`.
//!
//! The migration-gain bar is applied to the column best only: the best
//! minimizes `Δ` within the column, so if it fails the bar every other
//! cell of the column fails it too.
//!
//! ## Bit-identical scores
//!
//! Cells are computed as [`Eval::static_cell`] (cached once per round)
//! plus [`Eval::score_with_static`] (re-run on rescore). [`Eval::score`]
//! composes the exact same two halves in the same floating-point order,
//! so a cached cell is always bit-identical to a from-scratch recompute —
//! the differential oracle in `tests/matrix_oracle.rs` asserts this for
//! arbitrary move sequences.
//!
//! Rows are rescored *lazily*: nothing is computed until a cell, a column
//! best, or a row aggregate is actually read. Power-off ranking exploits
//! this by touching only its candidate rows.

use eards_model::{Resources, VmId};

use crate::budget::WorkMeter;
use crate::eval::{CellStatic, Eval};
use crate::score::Score;

/// Reusable allocations for [`Eval`] and [`ScoreMatrix`].
///
/// One scheduling round needs `O(M·N)` cell storage plus several `O(M)` /
/// `O(N)` side tables; a long simulation runs thousands of rounds. The
/// buffers outlive the per-round `&Cluster` borrow that [`Eval`] is tied
/// to, so [`ScoreScheduler`](crate::ScoreScheduler) keeps one
/// `EngineBuffers` alive across rounds and the engine recycles every
/// vector through it instead of reallocating.
#[derive(Debug, Default, Clone)]
pub struct EngineBuffers {
    // Eval state (see `Eval::new_in` / `Eval::recycle`).
    pub(crate) vms: Vec<VmId>,
    pub(crate) original: Vec<Option<usize>>,
    pub(crate) placement: Vec<Option<usize>>,
    pub(crate) committed: Vec<Resources>,
    pub(crate) vm_count: Vec<usize>,
    // Matrix state (see `ScoreMatrix::new_in` / `ScoreMatrix::recycle`).
    pub(crate) statics: Vec<CellStatic>,
    pub(crate) statics_ready: Vec<bool>,
    pub(crate) cells: Vec<Score>,
    pub(crate) row_stale: Vec<bool>,
    pub(crate) pending: Vec<usize>,
    pub(crate) pending_flag: Vec<bool>,
    pub(crate) col_best: Vec<Option<(f64, usize)>>,
}

impl EngineBuffers {
    /// Creates an empty buffer set (vectors grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Incrementally-maintained score matrix over an [`Eval`] overlay.
///
/// Invariants:
/// * `!row_stale[r]` ⇒ every `cells[r·n + v]` equals
///   `eval.score(r, v)` under the current overlay;
/// * `row_stale[r]` ⇒ `pending_flag[r]` (a stale row is always queued for
///   the next column sync);
/// * after [`Self::sync`], `col_best[v]` is `Some((to, h))` for the
///   feasible cell of column `v` minimizing `(to, h)` over all rows
///   `h ≠ placement[v]`, or `None` if the column has no feasible cell.
pub struct ScoreMatrix<'e, 'a> {
    eval: &'e mut Eval<'a>,
    /// Columns (matrix VMs).
    n: usize,
    /// Rows (hosts).
    m: usize,
    /// Round-static cell halves, row-major `m × n`, filled lazily per row.
    statics: Vec<CellStatic>,
    statics_ready: Vec<bool>,
    /// Cached full scores, row-major `m × n`.
    cells: Vec<Score>,
    /// Rows whose cached cells no longer match the overlay.
    row_stale: Vec<bool>,
    /// Rows changed since the last column sync (deduplicated worklist).
    pending: Vec<usize>,
    pending_flag: Vec<bool>,
    /// Per-column best candidate `(to_value, row)`, excluding the current
    /// placement row and infeasible cells.
    col_best: Vec<Option<(f64, usize)>>,
    /// Rows actually rescored this round (dirty-row invalidations paid),
    /// counting the initial lazy fill — the incremental engine's key
    /// efficiency figure, surfaced through the observability layer.
    rescored: u64,
    /// Deterministic work accounting (cells rescored + argmin scans).
    /// Unlimited by default; [`Self::set_work_budget`] arms it. Purely
    /// additive `u64` counting — it never alters scores or tie-breaks,
    /// so an unexhausted budgeted run is bit-identical to an unbudgeted
    /// one.
    meter: WorkMeter,
}

impl<'e, 'a> ScoreMatrix<'e, 'a> {
    /// Builds a matrix over `eval` with fresh allocations.
    pub fn new(eval: &'e mut Eval<'a>) -> Self {
        Self::new_in(eval, &mut EngineBuffers::default())
    }

    /// Builds a matrix over `eval`, recycling the vectors in `buf`.
    ///
    /// All rows start stale and pending: nothing is scored until read
    /// (see the module docs on laziness).
    pub fn new_in(eval: &'e mut Eval<'a>, buf: &mut EngineBuffers) -> Self {
        let m = eval.num_hosts();
        let n = eval.num_vms();

        let mut statics = std::mem::take(&mut buf.statics);
        statics.clear();
        statics.resize(m * n, CellStatic::default());
        let mut statics_ready = std::mem::take(&mut buf.statics_ready);
        statics_ready.clear();
        statics_ready.resize(m, false);
        let mut cells = std::mem::take(&mut buf.cells);
        cells.clear();
        cells.resize(m * n, Score::INFINITE);
        let mut row_stale = std::mem::take(&mut buf.row_stale);
        row_stale.clear();
        row_stale.resize(m, true);
        let mut pending = std::mem::take(&mut buf.pending);
        pending.clear();
        pending.extend(0..m);
        let mut pending_flag = std::mem::take(&mut buf.pending_flag);
        pending_flag.clear();
        pending_flag.resize(m, true);
        let mut col_best = std::mem::take(&mut buf.col_best);
        col_best.clear();
        col_best.resize(n, None);

        ScoreMatrix {
            eval,
            n,
            m,
            statics,
            statics_ready,
            cells,
            row_stale,
            pending,
            pending_flag,
            col_best,
            rescored: 0,
            meter: WorkMeter::unlimited(),
        }
    }

    /// Arms the work meter with a finite per-round budget (in work
    /// units; see [`WorkMeter`]). Call before the first read — charges
    /// only accumulate from this point.
    pub fn set_work_budget(&mut self, budget: u64) {
        self.meter = WorkMeter::with_budget(budget);
    }

    /// Work units spent so far this round.
    pub fn work_spent(&self) -> u64 {
        self.meter.spent()
    }

    /// Whether the armed work budget has been exhausted (always `false`
    /// without [`Self::set_work_budget`]).
    pub fn work_exhausted(&self) -> bool {
        self.meter.exhausted()
    }

    /// Hands the matrix's allocations back for reuse in a later round.
    pub fn recycle(self, buf: &mut EngineBuffers) {
        buf.statics = self.statics;
        buf.statics_ready = self.statics_ready;
        buf.cells = self.cells;
        buf.row_stale = self.row_stale;
        buf.pending = self.pending;
        buf.pending_flag = self.pending_flag;
        buf.col_best = self.col_best;
    }

    /// Number of host rows.
    pub fn num_hosts(&self) -> usize {
        self.m
    }

    /// Number of VM columns.
    pub fn num_vms(&self) -> usize {
        self.n
    }

    /// The underlying evaluator (read-only: all overlay mutation must go
    /// through [`Self::apply_move`] so invalidation stays sound).
    pub fn eval(&self) -> &Eval<'a> {
        self.eval
    }

    #[inline]
    fn idx(&self, h: usize, v: usize) -> usize {
        h * self.n + v
    }

    /// Rescores row `r` if its cached cells are stale (computing its
    /// static halves on first touch).
    fn ensure_row(&mut self, r: usize) {
        if !self.row_stale[r] {
            return;
        }
        if !self.statics_ready[r] {
            for v in 0..self.n {
                self.statics[r * self.n + v] = self.eval.static_cell(r, v);
            }
            self.statics_ready[r] = true;
        }
        for v in 0..self.n {
            let idx = r * self.n + v;
            self.cells[idx] = self.eval.score_with_static(r, v, &self.statics[idx]);
        }
        self.row_stale[r] = false;
        self.rescored += 1;
        self.meter.charge(self.n as u64);
    }

    /// Rows rescored so far (initial lazy fills plus dirty-row
    /// invalidations). A full-rescan engine would pay
    /// `num_hosts × sweeps`; this counter shows what was actually paid.
    pub fn rows_rescored(&self) -> u64 {
        self.rescored
    }

    /// Marks row `r` changed: its cells need a rescore and the per-column
    /// bests need to account for it at the next sync.
    fn mark_row_changed(&mut self, r: usize) {
        self.row_stale[r] = true;
        if !self.pending_flag[r] {
            self.pending_flag[r] = true;
            self.pending.push(r);
        }
    }

    /// Full `O(M)` rescan of column `v`'s best candidate. Requires all
    /// rows clean.
    fn recompute_col(&self, v: usize, placement: Option<usize>) -> Option<(f64, usize)> {
        let mut cur: Option<(f64, usize)> = None;
        for r in 0..self.m {
            if placement == Some(r) {
                continue;
            }
            let s = self.cells[r * self.n + v];
            if s.is_infinite() {
                continue;
            }
            let cand = (s.value(), r);
            if cur.is_none_or(|b| cand < b) {
                cur = Some(cand);
            }
        }
        cur
    }

    /// Brings every stale row and every column best up to date.
    fn sync(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for &r in &pending {
            self.ensure_row(r);
        }
        for v in 0..self.n {
            let placement = self.eval.placement_of(v);
            // A cached best on a changed row may have gone worse (or
            // become this column's placement) — rescan. The moved column
            // always lands here: its new placement row is pending.
            let rescan = match self.col_best[v] {
                Some((_, r)) => self.pending_flag[r],
                None => false,
            };
            if rescan {
                self.meter.charge(self.m as u64);
                self.col_best[v] = self.recompute_col(v, placement);
            } else {
                self.meter.charge(pending.len() as u64);
                // The cached best (if any) sits on an unchanged row and
                // is still valid; challenge it with the changed rows.
                let mut cur = self.col_best[v];
                for &r in &pending {
                    if placement == Some(r) {
                        continue;
                    }
                    let s = self.cells[r * self.n + v];
                    if s.is_infinite() {
                        continue;
                    }
                    let cand = (s.value(), r);
                    if cur.is_none_or(|b| cand < b) {
                        cur = Some(cand);
                    }
                }
                self.col_best[v] = cur;
            }
        }
        for r in pending {
            self.pending_flag[r] = false;
        }
    }

    /// The cached score of cell `(h, v)`, rescoring the row first if it
    /// is stale. Bit-identical to `self.eval().score(h, v)`.
    pub fn score(&mut self, h: usize, v: usize) -> Score {
        self.ensure_row(h);
        self.cells[self.idx(h, v)]
    }

    /// Cost of column `v` where it currently (hypothetically) sits;
    /// infinite on the virtual host.
    pub fn current_cost(&mut self, v: usize) -> Score {
        match self.eval.placement_of(v) {
            Some(p) => self.score(p, v),
            None => Score::INFINITE,
        }
    }

    /// Applies `⟨v → h⟩` to the overlay and dirties exactly the two
    /// affected host rows.
    pub fn apply_move(&mut self, v: usize, h: usize) {
        let old = self.eval.placement_of(v);
        self.eval.apply_move(v, h);
        if let Some(o) = old {
            self.mark_row_changed(o);
        }
        self.mark_row_changed(h);
    }

    /// The most beneficial unapplied move over all non-frozen columns, by
    /// the solver's ordering key `(Δ, to, column, row)` and subject to
    /// the migration-gain bar — or `None` at a local optimum.
    pub fn best_move(&mut self, frozen: &[bool]) -> Option<(usize, usize)> {
        self.sync();
        // The argmin over column bests touches every column once.
        self.meter.charge(self.n as u64);
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for (v, &is_frozen) in frozen.iter().enumerate().take(self.n) {
            if is_frozen {
                continue;
            }
            let Some((to_val, h)) = self.col_best[v] else {
                continue;
            };
            let from = match self.eval.placement_of(v) {
                Some(p) => self.cells[p * self.n + v],
                None => Score::INFINITE,
            };
            let d = Score::delta(Score::finite(to_val), from).expect("column best is finite");
            // Creations (from the virtual host) only need any feasible
            // cell; migrations must clear the configured gain bar. The
            // column best minimizes Δ, so if it fails the bar the whole
            // column does.
            let bar = if self.eval.original_of(v).is_some() {
                -self.eval.min_migration_gain()
            } else {
                0.0
            };
            if d >= bar {
                continue;
            }
            let cand = (d, to_val, v, h);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best.map(|(_, _, v, h)| (v, h))
    }

    /// §III-C power-off aggregate of host row `h`: the number of infinite
    /// cells and the sum of the finite ones. Touches only this row (lazy
    /// scoring), so ranking a few candidate hosts stays `O(|candidates|·N)`.
    pub fn row_aggregate(&mut self, h: usize) -> (usize, f64) {
        self.ensure_row(h);
        let mut infs = 0usize;
        let mut sum = 0.0;
        for v in 0..self.n {
            let s = self.cells[h * self.n + v];
            if s.is_infinite() {
                infs += 1;
            } else {
                sum += s.value();
            }
        }
        (infs, sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreConfig;
    use eards_model::{Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState};
    use eards_sim::{SimDuration, SimTime};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cluster(n: u32) -> Cluster {
        Cluster::new(
            (0..n)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn job(id: u64, cpu: u32) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(6000),
            1.5,
        )
    }

    #[test]
    fn cached_cells_match_fresh_scores_after_moves() {
        let mut c = cluster(4);
        let vms: Vec<_> = (0..5).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb();
        let mut eval = Eval::new(&c, &cfg, t(0), vms);
        let mut matrix = ScoreMatrix::new(&mut eval);
        // A zig-zag of moves, including stacking and vacating.
        for &(v, h) in &[(0usize, 0usize), (1, 0), (2, 1), (0, 1), (3, 3), (0, 2)] {
            matrix.apply_move(v, h);
            for h in 0..matrix.num_hosts() {
                for v in 0..matrix.num_vms() {
                    let cached = matrix.score(h, v);
                    let fresh = matrix.eval().score(h, v);
                    assert_eq!(
                        cached.value().to_bits(),
                        fresh.value().to_bits(),
                        "cell ({h}, {v}) diverged: cached {cached} fresh {fresh}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_aggregate_matches_manual_sum() {
        let mut c = cluster(3);
        c.begin_power_off(HostId(2), t(0));
        let vms: Vec<_> = (0..3).map(|i| c.submit_job(job(i, 150))).collect();
        let cfg = ScoreConfig::sb1();
        let mut eval = Eval::new(&c, &cfg, t(0), vms);
        let (infs, sum) = {
            let mut matrix = ScoreMatrix::new(&mut eval);
            matrix.row_aggregate(2)
        };
        assert_eq!(infs, 3, "an off host is infeasible for every column");
        assert_eq!(sum, 0.0);
        let (infs0, sum0) = {
            let mut matrix = ScoreMatrix::new(&mut eval);
            matrix.row_aggregate(0)
        };
        assert_eq!(infs0, 0);
        let manual: f64 = (0..3).map(|v| eval.score(0, v).value()).sum();
        assert!((sum0 - manual).abs() < 1e-12);
    }

    #[test]
    fn buffers_round_trip_preserves_behavior() {
        let mut buf = EngineBuffers::new();
        for round in 0..3 {
            let mut c = cluster(3);
            let vms: Vec<_> = (0..4).map(|i| c.submit_job(job(i, 100))).collect();
            let cfg = ScoreConfig::sb0();
            let mut fresh_eval = Eval::new(&c, &cfg, t(round), vms.clone());
            let expected = {
                let mut m = ScoreMatrix::new(&mut fresh_eval);
                m.best_move(&[false; 4])
            };
            let mut eval = Eval::new_in(&c, &cfg, t(round), vms, &mut buf);
            let mut m = ScoreMatrix::new_in(&mut eval, &mut buf);
            assert_eq!(m.best_move(&[false; 4]), expected, "round {round}");
            m.recycle(&mut buf);
            eval.recycle(&mut buf);
        }
    }
}
