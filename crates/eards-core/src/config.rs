//! Configuration of the score-based scheduler.
//!
//! §V evaluates a family of configurations that enable the penalties
//! incrementally:
//!
//! * **SB0** — `P_req` + `P_res` + `P_pwr` (the basic consolidating
//!   variant compared against Backfilling in Table II);
//! * **SB1** — SB0 + `P_virt` (creation/migration overheads, Table III);
//! * **SB2** — SB1 + `P_conc` (operation concurrency, Table III);
//! * **SB** — SB2 with migration enabled (Table IV);
//! * **full** — SB + the `P_SLA` and `P_fault` extensions the paper
//!   defines (§III-A.5/6) but leaves to future work — implemented here.

/// Tunable parameters and penalty switches of the score-based scheduler.
#[derive(Debug, Clone)]
pub struct ScoreConfig {
    /// Display name override (defaults to the variant name).
    pub name: String,
    /// Enable `P_virt` (creation + migration overhead penalties).
    pub virt_penalty: bool,
    /// Enable `P_conc` (in-flight-operation concurrency penalties).
    pub conc_penalty: bool,
    /// Enable `P_SLA` (dynamic SLA enforcement — extension).
    pub sla_penalty: bool,
    /// Enable `P_fault` (reliability — extension).
    pub fault_penalty: bool,
    /// Consider migrating running VMs (otherwise placement-only).
    pub migration: bool,
    /// `C_e`: cost of keeping an under-used host (§III-A.4). The paper's
    /// experiments use 20 (and sweep 0 / 20 / 60 in Table V).
    pub c_empty: f64,
    /// `C_f`: reward per unit occupation for filling a host. The paper
    /// uses 40 (sweeping 40 / 40 / 100 in Table V).
    pub c_fill: f64,
    /// `TH_empty`: a host with this many VMs or fewer counts as emptiable.
    /// The paper uses 1.
    pub th_empty: usize,
    /// `C_sla`: cost of a (recoverable) SLA violation.
    pub c_sla: f64,
    /// `TH_SLA`: fulfilment at or below this is an unrecoverable violation
    /// (infinite penalty).
    pub th_sla: f64,
    /// `C_fail`: cost of losing a VM to a host failure.
    pub c_fail: f64,
    /// Hill-climbing iteration limit per scheduling round (§III-B's
    /// "maximum number of algorithm iterations").
    pub max_moves: usize,
    /// Minimum score improvement a *migration* must deliver to be applied
    /// (creations are exempt: allocating queued VMs always dominates).
    /// §III-A.4: "C_f tries to compensate the migration cost" — this
    /// threshold is the corresponding hysteresis that keeps marginal
    /// back-and-forth moves from accumulating.
    pub min_migration_gain: f64,
}

impl ScoreConfig {
    /// SB0: hardware/software + resource requirements + power efficiency.
    pub fn sb0() -> Self {
        ScoreConfig {
            name: "SB0".into(),
            virt_penalty: false,
            conc_penalty: false,
            sla_penalty: false,
            fault_penalty: false,
            migration: false,
            c_empty: 20.0,
            c_fill: 40.0,
            th_empty: 1,
            c_sla: 50.0,
            th_sla: 0.3,
            c_fail: 500.0,
            max_moves: 32,
            min_migration_gain: 30.0,
        }
    }

    /// SB1 = SB0 + virtualization overheads.
    pub fn sb1() -> Self {
        ScoreConfig {
            name: "SB1".into(),
            virt_penalty: true,
            ..Self::sb0()
        }
    }

    /// SB2 = SB1 + concurrency overheads.
    pub fn sb2() -> Self {
        ScoreConfig {
            name: "SB2".into(),
            conc_penalty: true,
            ..Self::sb1()
        }
    }

    /// SB = SB2 + migration (the full Table IV configuration).
    pub fn sb() -> Self {
        ScoreConfig {
            name: "SB".into(),
            migration: true,
            ..Self::sb2()
        }
    }

    /// SB plus the paper's future-work extensions (`P_SLA`, `P_fault`).
    pub fn full() -> Self {
        ScoreConfig {
            name: "SB+ext".into(),
            sla_penalty: true,
            fault_penalty: true,
            ..Self::sb()
        }
    }

    /// Overrides the consolidation cost pair `(C_e, C_f)` (Table V sweeps
    /// these).
    pub fn with_consolidation_costs(mut self, c_empty: f64, c_fill: f64) -> Self {
        self.c_empty = c_empty;
        self.c_fill = c_fill;
        self
    }

    /// Overrides the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_enable_penalties_incrementally() {
        let sb0 = ScoreConfig::sb0();
        assert!(!sb0.virt_penalty && !sb0.conc_penalty && !sb0.migration);
        let sb1 = ScoreConfig::sb1();
        assert!(sb1.virt_penalty && !sb1.conc_penalty);
        let sb2 = ScoreConfig::sb2();
        assert!(sb2.virt_penalty && sb2.conc_penalty && !sb2.migration);
        let sb = ScoreConfig::sb();
        assert!(sb.migration && !sb.sla_penalty);
        let full = ScoreConfig::full();
        assert!(full.sla_penalty && full.fault_penalty);
    }

    #[test]
    fn paper_defaults() {
        let sb = ScoreConfig::sb();
        assert_eq!(sb.c_empty, 20.0);
        assert_eq!(sb.c_fill, 40.0);
        assert_eq!(sb.th_empty, 1);
    }

    #[test]
    fn builders() {
        let c = ScoreConfig::sb()
            .with_consolidation_costs(60.0, 100.0)
            .named("aggressive");
        assert_eq!(c.c_empty, 60.0);
        assert_eq!(c.c_fill, 100.0);
        assert_eq!(c.name, "aggressive");
    }
}
