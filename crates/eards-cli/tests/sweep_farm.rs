//! End-to-end sweep-farm tests against the real `eards` binary: the
//! supervised multi-process farm must survive an injected SIGKILL
//! mid-shard (retrying from the last checkpoint) and still produce a
//! merged report **byte-identical** to a serial in-process run; hung
//! workers must be quarantined, not dropped; and a corrupt checkpoint
//! handed to `eards resume` must exit with the dedicated code 3.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_eards");

fn eards(args: &str) -> Output {
    Command::new(BIN)
        .args(args.split_whitespace())
        .output()
        .expect("spawn eards")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eards-sweepfarm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The acceptance scenario: a 4-shard grid run with `--jobs 2` while the
/// supervisor SIGKILLs one shard's first attempt mid-run. The retry
/// resumes from the shard's last checkpoint, and the merged report is
/// byte-identical to a serial run of the same grid — completion order,
/// the kill, and the resume leave no trace in the output bytes.
#[test]
fn injected_sigkill_retries_from_checkpoint_and_merge_is_bit_identical() {
    let serial_dir = tmpdir("serial");
    let farm_dir = tmpdir("farm");
    let world = "--hosts 6 --hours 6 --trace-seed 3 --seeds 3,4 --policies sb --chaos-grid 0,1";

    let serial = eards(&format!(
        "sweep {world} --serial --sweep-out {}",
        serial_dir.display()
    ));
    assert!(
        serial.status.success(),
        "serial sweep failed: {}",
        String::from_utf8_lossy(&serial.stderr)
    );

    let farm = eards(&format!(
        "sweep {world} --jobs 2 --sweep-out {} --ckpt-every-hours 1 \
         --inject-kill s3-sb-x1 --kill-after-hours 2 --dawdle-ms 5 \
         --shard-timeout-secs 120 --max-retries 2",
        farm_dir.display()
    ));
    let stdout = String::from_utf8_lossy(&farm.stdout);
    let stderr = String::from_utf8_lossy(&farm.stderr);
    assert!(
        farm.status.success(),
        "farm sweep failed:\n{stdout}\n{stderr}"
    );

    // The kill actually happened and the shard came back.
    assert!(
        stderr.contains("injecting SIGKILL"),
        "expected the injected kill in supervision events:\n{stderr}"
    );
    assert!(
        stdout.contains("retried: 1 shard(s)"),
        "expected exactly one retried shard:\n{stdout}"
    );
    assert!(
        stdout.contains("resumed: 1 shard(s)"),
        "expected the retry to resume from a checkpoint:\n{stdout}"
    );
    assert!(stdout.contains("ok: 4, quarantined: 0"), "{stdout}");

    // The headline guarantee: merged bytes identical to the serial run.
    assert_eq!(
        read(&serial_dir.join("report.csv")),
        read(&farm_dir.join("report.csv")),
        "parallel report.csv diverged from serial"
    );
    assert_eq!(
        read(&serial_dir.join("report.jsonl")),
        read(&farm_dir.join("report.jsonl")),
        "parallel report.jsonl diverged from serial"
    );

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&farm_dir);
}

/// A worker that stops heartbeating is killed on the shard timeout and,
/// with the retry budget exhausted, quarantined: it still appears in the
/// merged report (status=quarantined) and flips the partial flag. The
/// healthy shard of the grid is unaffected.
#[test]
fn hung_worker_is_quarantined_and_report_is_partial() {
    let dir = tmpdir("hang");
    let out = eards(&format!(
        "sweep --hosts 4 --hours 3 --seeds 5,6 --policies sb --jobs 2 \
         --sweep-out {} --inject-hang s5-sb-x0 --hang-after-hours 1 \
         --shard-timeout-secs 1 --max-retries 0",
        dir.display()
    ));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("QUARANTINED"), "{stdout}");
    assert!(stdout.contains("report is PARTIAL"), "{stdout}");
    assert!(stderr.contains("no heartbeat"), "{stderr}");

    let csv = read(&dir.join("report.csv"));
    assert_eq!(csv.lines().count(), 3, "both shards present:\n{csv}");
    assert!(csv.contains("s5-sb-x0,5,sb,0,quarantined,"), "{csv}");
    assert!(csv.contains("s6-sb-x0,6,sb,0,ok,"), "{csv}");
    let jsonl = read(&dir.join("report.jsonl"));
    assert!(
        jsonl.starts_with(
            "{\"kind\":\"sweep_report\",\"shards\":2,\"ok\":1,\"quarantined\":1,\"partial\":true}"
        ),
        "{jsonl}"
    );
    assert!(jsonl.contains("\"status\":\"quarantined\""), "{jsonl}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--shard-metrics` produces a merged metrics.json that passes the
/// exporter's own schema check.
#[test]
fn shard_metrics_roll_up_across_the_farm() {
    let dir = tmpdir("metrics");
    let out = eards(&format!(
        "sweep --hosts 4 --hours 2 --seeds 7,8 --policies sb --jobs 2 \
         --shard-metrics --sweep-out {}",
        dir.display()
    ));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let merged = dir.join("metrics.json");
    assert!(merged.is_file(), "rollup written");
    let check = eards(&format!("trace check --metrics {}", merged.display()));
    assert!(
        check.status.success(),
        "merged metrics failed the schema check: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt checkpoint files get the dedicated exit code 3 (not the
/// generic invocation-error 2) and a one-line error, whether the file is
/// garbage from byte zero or a truncated real checkpoint.
#[test]
fn corrupt_checkpoint_resume_exits_3() {
    let dir = tmpdir("corrupt");

    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, b"EARDSNAP\x7fnot really").unwrap();
    let out = eards(&format!("resume {}", garbage.display()));
    assert_eq!(out.status.code(), Some(3), "garbage file");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.lines().count(), 1, "one-line error, got:\n{err}");
    assert!(err.starts_with("error: "), "{err}");

    // A real checkpoint, truncated: same contract.
    let ckdir = dir.join("ckpts");
    let run = eards(&format!(
        "run --hosts 4 --hours 3 --checkpoint-every 1 --checkpoint-out {}",
        ckdir.display()
    ));
    assert!(run.status.success());
    let ckpt = std::fs::read_dir(&ckdir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let bytes = std::fs::read(&ckpt).unwrap();
    let truncated = dir.join("truncated.bin");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let out = eards(&format!("resume {}", truncated.display()));
    assert_eq!(out.status.code(), Some(3), "truncated checkpoint");

    // Invocation errors keep exit 2 — the codes stay distinguishable.
    let out = eards("resume");
    assert_eq!(out.status.code(), Some(2), "missing operand");

    let _ = std::fs::remove_dir_all(&dir);
}
