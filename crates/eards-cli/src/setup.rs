//! Shared CLI flag handling: building the datacenter, workload and run
//! configuration from common flags.

use eards_core::{OverloadControl, ScoreConfig, ScoreScheduler};
use eards_datacenter::{paper_datacenter, small_datacenter, AdaptiveLambda, RunConfig};
use eards_model::{FaultPlan, HostClass, HostSpec, Policy, ShardSpec};
use eards_obs::Obs;
use eards_policies::{BackfillingPolicy, DynamicBackfillingPolicy, RandomPolicy, RoundRobinPolicy};
use eards_sim::SimDuration;
use eards_workload::{generate, parse_swf, SwfOptions, SynthConfig, Trace};

use crate::args::{ArgError, Args};

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgError),
    /// Free-form usage problem.
    Usage(String),
    /// I/O problem.
    Io(std::io::Error),
    /// Lint gate failure: the rendered report. Printed verbatim (no
    /// `error:` prefix) and exits 1 rather than 2, so CI logs show the
    /// findings and scripts can tell "new findings" from "bad invocation".
    Lint(String),
    /// A snapshot/checkpoint file failed to decode or validate (corrupt,
    /// truncated, or from a different world). Exits 3 so supervisors and
    /// scripts can distinguish "bad checkpoint" from "bad invocation" (2)
    /// and react (e.g. discard the checkpoint and start fresh).
    Snapshot(String),
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Usage(s) => write!(f, "{s}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Lint(report) => write!(f, "{report}"),
            CliError::Snapshot(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The flags shared by `run`, `compare` and `sweep`.
pub const COMMON_VALUED: &[&str] = &[
    "hosts",
    "days",
    "hours",
    "seed",
    "trace-seed",
    "load-factor",
    "trace",
    "lambda-min",
    "lambda-max",
    "adaptive",
    "checkpoint-mins",
    "policy",
    "policies",
    "power-series",
    "out",
    "lambda-min-grid",
    "lambda-max-grid",
    "chaos",
    "trace-out",
    "chrome-out",
    "metrics-out",
    "checkpoint-every",
    "checkpoint-out",
    "solver-budget",
    "shards",
];

/// The observability export flags (valued; `run` only).
pub const OBS_FLAGS: &[&str] = &["trace-out", "chrome-out", "metrics-out"];

/// Ring capacity used when tracing is requested: large enough that a
/// paper-scale day keeps every event, small enough to preallocate cheaply.
pub const OBS_CAPACITY: usize = 1 << 16;

/// True if any observability export flag was given.
pub fn obs_requested(args: &Args) -> bool {
    OBS_FLAGS.iter().any(|f| args.value(f).is_some())
}

/// The boolean switches shared by the simulation commands.
pub const COMMON_SWITCHES: &[&str] = &["paper-dc", "failures", "economics", "csv", "degrade"];

/// The overload control the score-based policies should run under, as
/// configured by `--solver-budget` (`None` = unlimited, bit-identical to
/// a build without the overload layer).
pub fn overload_from(cfg: &RunConfig) -> Option<OverloadControl> {
    cfg.solver_budget.map(OverloadControl::with_budget)
}

/// Builds a policy by CLI name. Score-based policies are handed a clone
/// of `obs` so solver spans and score attributions land in the same trace
/// as the runner's events (a disabled handle keeps every hook a no-op),
/// `ctl` arms their work budget + degradation ladder (`None` leaves the
/// solver unbounded), and `shards` arms the sharded hierarchical solver
/// (`None` keeps the dense matrix path; non-score policies ignore both).
pub fn make_policy(
    name: &str,
    seed: u64,
    obs: &Obs,
    ctl: Option<OverloadControl>,
    shards: Option<ShardSpec>,
) -> Result<Box<dyn Policy>, CliError> {
    let score = |cfg: ScoreConfig| -> Box<dyn Policy> {
        let mut sched = ScoreScheduler::with_obs(cfg, obs.clone());
        if let Some(c) = ctl {
            sched = sched.with_overload(c);
        }
        if let Some(s) = shards {
            sched = sched.with_shards(s);
        }
        Box::new(sched)
    };
    Ok(match name.to_ascii_lowercase().as_str() {
        "rd" | "random" => Box::new(RandomPolicy::new(seed)),
        "rr" | "round-robin" => Box::new(RoundRobinPolicy::new()),
        "bf" | "backfilling" => Box::new(BackfillingPolicy::new()),
        "dbf" => Box::new(DynamicBackfillingPolicy::new()),
        "sb0" => score(ScoreConfig::sb0()),
        "sb1" => score(ScoreConfig::sb1()),
        "sb2" => score(ScoreConfig::sb2()),
        "sb" => score(ScoreConfig::sb()),
        "sb-ext" | "full" => score(ScoreConfig::full()),
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy {other:?} (rd, rr, bf, dbf, sb0, sb1, sb2, sb, sb-ext)"
            )))
        }
    })
}

/// Builds the host list from `--hosts N` / `--paper-dc`.
pub fn build_hosts(args: &Args) -> Result<Vec<HostSpec>, CliError> {
    if args.switch("paper-dc") {
        return Ok(paper_datacenter());
    }
    let n = args.get::<u32>("hosts", 20)?;
    if n == 0 {
        return Err(CliError::Usage("--hosts must be positive".into()));
    }
    Ok(small_datacenter(n, HostClass::Medium))
}

/// Builds the workload from `--trace FILE.swf` or the synthetic generator
/// (`--days/--hours`, `--trace-seed`, `--load-factor`).
pub fn build_trace(args: &Args) -> Result<Trace, CliError> {
    if let Some(path) = args.value("trace") {
        let text = std::fs::read_to_string(path)?;
        return parse_swf(&text, &SwfOptions::default())
            .map_err(|e| CliError::Usage(format!("{path}: {e}")));
    }
    let span = if let Some(h) = args.get_opt::<u64>("hours")? {
        SimDuration::from_hours(h)
    } else {
        SimDuration::from_days(args.get::<u64>("days", 1)?)
    };
    let factor = args.get::<f64>("load-factor", 1.0)?;
    if factor <= 0.0 {
        return Err(CliError::Usage("--load-factor must be positive".into()));
    }
    let cfg = SynthConfig {
        span,
        ..SynthConfig::grid5000_week()
    }
    .with_load_factor(factor);
    Ok(generate(&cfg, args.get::<u64>("trace-seed", 7)?))
}

/// Builds the run configuration from the λ/failure/checkpoint flags.
pub fn build_run_config(args: &Args) -> Result<RunConfig, CliError> {
    let lo = args.get::<u32>("lambda-min", 30)?;
    let hi = args.get::<u32>("lambda-max", 90)?;
    if lo >= hi {
        return Err(CliError::Usage(format!(
            "--lambda-min {lo} must be below --lambda-max {hi}"
        )));
    }
    let mut cfg = RunConfig::default().with_lambdas(lo, hi);
    cfg.seed = args.get::<u64>("seed", cfg.seed)?;
    if args.switch("failures") {
        cfg = cfg.with_faults(FaultPlan::crashes());
    }
    if let Some(x) = args.get_opt::<f64>("chaos")? {
        if x < 0.0 {
            return Err(CliError::Usage("--chaos intensity must be ≥ 0".into()));
        }
        cfg = cfg.with_faults(FaultPlan::chaos(x));
    }
    if let Some(mins) = args.get_opt::<u64>("checkpoint-mins")? {
        cfg.checkpoint_period = Some(SimDuration::from_mins(mins));
    }
    if let Some(target) = args.get_opt::<f64>("adaptive")? {
        if !(0.0..=100.0).contains(&target) {
            return Err(CliError::Usage("--adaptive target must be 0–100".into()));
        }
        cfg.adaptive_lambda = Some(AdaptiveLambda {
            target_satisfaction: target,
            ..AdaptiveLambda::default()
        });
    }
    cfg.record_power_series = args.value("power-series").is_some();
    if let Some(b) = args.get_opt::<u64>("solver-budget")? {
        if b == 0 {
            return Err(CliError::Usage(
                "--solver-budget must be a positive work-unit count".into(),
            ));
        }
        cfg.solver_budget = Some(b);
    }
    if let Some(n) = args.get_opt::<u32>("shards")? {
        if n == 0 {
            return Err(CliError::Usage(
                "--shards must be a positive shard count".into(),
            ));
        }
        cfg.shards = Some(n);
    }
    if args.switch("degrade") {
        cfg.degrade = true;
    }
    if obs_requested(args) {
        cfg = cfg.with_obs(Obs::enabled(OBS_CAPACITY));
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ArgSpec;

    fn parse(s: &str) -> Args {
        ArgSpec::new(COMMON_VALUED, COMMON_SWITCHES)
            .parse(s.split_whitespace().map(String::from))
            .unwrap()
    }

    #[test]
    fn default_setup() {
        let a = parse("");
        assert_eq!(build_hosts(&a).unwrap().len(), 20);
        let t = build_trace(&a).unwrap();
        assert!(t.len() > 10, "a day of load");
        let cfg = build_run_config(&a).unwrap();
        assert_eq!(cfg.lambda_min, 0.30);
        assert!(cfg.faults.is_none());
    }

    #[test]
    fn paper_dc_and_lambdas() {
        let a = parse("--paper-dc --lambda-min 40 --lambda-max 95 --failures");
        assert_eq!(build_hosts(&a).unwrap().len(), 100);
        let cfg = build_run_config(&a).unwrap();
        assert_eq!(cfg.lambda_min, 0.40);
        assert_eq!(cfg.lambda_max, 0.95);
        assert!(cfg.faults.host_crashes);
    }

    #[test]
    fn chaos_flag_builds_a_full_plan() {
        let a = parse("--chaos 1.5");
        let cfg = build_run_config(&a).unwrap();
        assert!(cfg.faults.host_crashes);
        assert!(cfg.faults.creation_failure_prob > 0.0);
        assert!(cfg.faults.rack.is_some());
    }

    #[test]
    fn hours_override_days() {
        let a = parse("--hours 2");
        let t = build_trace(&a).unwrap();
        assert!(t.span() <= SimDuration::from_hours(2));
    }

    #[test]
    fn adaptive_flag() {
        let a = parse("--adaptive 98.5");
        let cfg = build_run_config(&a).unwrap();
        assert_eq!(cfg.adaptive_lambda.unwrap().target_satisfaction, 98.5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(build_run_config(&parse("--lambda-min 90 --lambda-max 30")).is_err());
        assert!(build_hosts(&parse("--hosts 0")).is_err());
        assert!(build_trace(&parse("--load-factor -1")).is_err());
        assert!(make_policy("quantum", 0, &Obs::disabled(), None, None).is_err());
    }

    #[test]
    fn all_policies_constructible() {
        for p in ["rd", "rr", "bf", "dbf", "sb0", "sb1", "sb2", "sb", "sb-ext"] {
            assert!(
                make_policy(p, 1, &Obs::disabled(), None, None).is_ok(),
                "{p}"
            );
            let ctl = Some(OverloadControl::with_budget(10_000));
            assert!(
                make_policy(p, 1, &Obs::disabled(), ctl, Some(ShardSpec::with_count(4))).is_ok(),
                "{p} armed"
            );
        }
    }

    #[test]
    fn overload_flags() {
        let cfg = build_run_config(&parse("")).unwrap();
        assert_eq!(cfg.solver_budget, None);
        assert!(!cfg.degrade);
        assert!(overload_from(&cfg).is_none());

        let cfg = build_run_config(&parse("--solver-budget 50000 --degrade")).unwrap();
        assert_eq!(cfg.solver_budget, Some(50_000));
        assert!(cfg.degrade);
        let ctl = overload_from(&cfg).unwrap();
        assert_eq!(ctl.budget, 50_000);
        assert!(ctl.ladder);

        assert!(build_run_config(&parse("--solver-budget 0")).is_err());
    }

    #[test]
    fn shards_flag() {
        let cfg = build_run_config(&parse("")).unwrap();
        assert_eq!(cfg.shards, None);
        assert!(cfg.shard_spec().is_none());

        let cfg = build_run_config(&parse("--shards 4")).unwrap();
        assert_eq!(cfg.shards, Some(4));
        let spec = cfg.shard_spec().unwrap();
        assert_eq!((spec.count, spec.rack_size), (4, 8));

        // A single shard is the dense path: no spec to arm.
        let cfg = build_run_config(&parse("--shards 1")).unwrap();
        assert!(cfg.shard_spec().is_none());

        // With a rack fault plan, shard boundaries follow its rack size.
        let cfg = build_run_config(&parse("--shards 4 --chaos 1.0")).unwrap();
        let spec = cfg.shard_spec().unwrap();
        assert_eq!(spec.rack_size, 8, "chaos rack plan uses the default size");

        assert!(build_run_config(&parse("--shards 0")).is_err());
    }

    #[test]
    fn obs_flags_enable_the_handle() {
        let cfg = build_run_config(&parse("")).unwrap();
        assert!(!cfg.obs.is_enabled(), "disabled unless requested");
        for flag in OBS_FLAGS {
            let cfg = build_run_config(&parse(&format!("--{flag} /tmp/x"))).unwrap();
            assert!(cfg.obs.is_enabled(), "--{flag} should enable tracing");
        }
    }
}
