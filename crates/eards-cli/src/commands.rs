//! The CLI commands: `run`, `resume`, `compare`, `sweep`, `trace`.

use eards_datacenter::{lambda_grid, run_sweep, Runner};
use eards_metrics::{fnum, heatmap, sparkline_fit, PricingModel, RunReport, Table};
use eards_obs::{validate, Obs};
use eards_sim::{SimDuration, SimTime};
use eards_workload::{analyze, generate, parse_swf, write_swf, SwfOptions, SynthConfig};

use crate::args::{ArgSpec, Args};
use crate::setup::{
    build_hosts, build_run_config, build_trace, make_policy, obs_requested, overload_from,
    CliError, COMMON_SWITCHES, COMMON_VALUED, OBS_FLAGS,
};

/// Usage text.
pub const USAGE: &str = "\
eards — energy-aware virtualized-datacenter simulator (Goiri et al., CLUSTER 2010)

USAGE:
  eards run      [--policy sb] [common flags]      simulate one policy
  eards resume   <FILE>                            resume a checkpointed run to the end
  eards compare  [--policies bf,dbf,sb] [...]      simulate several policies
  eards sweep    [--policy sb] [--lambda-min-grid 10,30,50]
                 [--lambda-max-grid 50,70,90] [...]  λ threshold sweep (parallel)
  eards sweep    --seeds 1,2,3 [--policies bf,sb] [--chaos-grid 0,1,2]
                 --sweep-out DIR [--jobs N | --serial] [common flags]
                 crash-tolerant what-if farm: one supervised worker process
                 per seed×policy×chaos shard, with per-shard heartbeat
                 timeouts (--shard-timeout-secs S), retry with exponential
                 backoff (--max-retries R, --backoff-ms B), checkpoint/resume
                 (--ckpt-every-hours H), and a deterministic merge: DIR gets
                 report.csv + report.jsonl, byte-identical to --serial.
                 --shard-metrics additionally rolls per-shard metrics up
                 into DIR/metrics.json. Quarantined shards stay in the
                 report (status=quarantined) and mark it partial.
  eards trace generate [--days D] [--trace-seed S] [--load-factor F] [--out FILE.swf]
  eards trace info <FILE.swf>                      summarize an SWF trace
  eards trace check [--jsonl F] [--chrome F] [--metrics F]
                                                   validate exported observability files
  eards lint     [--baseline F] [--format text|json] [--write-baseline]
                                                   determinism/safety lints over the sources
  eards help                                       this text

COMMON FLAGS:
  --hosts N | --paper-dc      datacenter size (default 20 medium nodes; paper = 100)
  --days D | --hours H        synthetic workload span (default 1 day)
  --trace FILE.swf            use a real SWF trace instead of the generator
  --trace-seed S              workload seed (default 7)
  --load-factor F             scale the offered load (default 1.0)
  --lambda-min P              node turn-off threshold, percent (default 30)
  --lambda-max P              node turn-on threshold, percent (default 90)
  --adaptive TARGET           adaptive λ_min controller holding TARGET % satisfaction
  --failures                  inject host failures from reliability factors
  --chaos X                   full fault plan at intensity X (crashes, boot/creation/
                              migration failures, slowdowns, rack outages; 1.0 = nominal)
  --checkpoint-mins M         checkpoint running VMs every M minutes
  --checkpoint-every H        snapshot the whole run every H simulated hours
                              (eards run only; needs --checkpoint-out)
  --checkpoint-out DIR        directory receiving ckpt_t<ms>.bin snapshot files,
                              resumable with `eards resume`
  --solver-budget W           per-round solver work budget (deterministic work units:
                              cell rescores + argmin scans). Arms the anytime solver
                              and the L0–L3 degradation ladder on score policies;
                              absent = unlimited, bit-identical to before
  --degrade                   runner backpressure under overload: cap retry backoff
                              growth and park flapping VMs until blacklists clear
  --shards N                  partition the cluster into N rack-aligned shards and
                              run the hierarchical solver (local hill climbs + a
                              cross-shard balancer) on score policies; absent or 1 =
                              the dense single-matrix solver, bit-identical to before
  --seed S                    simulation seed (operation jitter, failures)
  --economics                 additionally print revenue/energy-cost/profit
  --power-series FILE.csv     write the datacenter power trace
  --csv                       print tables as CSV instead of Markdown
  --out FILE                  write output to FILE (trace generate)

OBSERVABILITY (eards run only; tracing is off — and the run bit-identical —
unless one of these is given):
  --trace-out FILE.jsonl      write the typed event log (one JSON object/line)
  --chrome-out FILE.json      write a Chrome trace_event file
                              (load in chrome://tracing or ui.perfetto.dev)
  --metrics-out FILE.json     write the counters/histograms snapshot

POLICIES: rd, rr, bf, dbf, sb0, sb1, sb2, sb (paper default), sb-ext
";

/// Dispatches a command line (without the program name). Returns the text
/// to print.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(USAGE.to_string());
    };
    match cmd.as_str() {
        "run" => run_cmd(rest),
        "resume" => resume_cmd(rest),
        "compare" => compare_cmd(rest),
        "sweep" => {
            if crate::farm::farm_requested(rest) {
                crate::farm::farm_cmd(rest)
            } else {
                sweep_cmd(rest)
            }
        }
        "sweep-worker" => crate::farm::worker_cmd(rest),
        "trace" => trace_cmd(rest),
        "lint" => crate::lint::lint_cmd(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; try `eards help`"
        ))),
    }
}

fn parse_common(tokens: &[String]) -> Result<Args, CliError> {
    Ok(ArgSpec::new(COMMON_VALUED, COMMON_SWITCHES).parse(tokens.to_vec())?)
}

fn render(table: &Table, csv: bool) -> String {
    if csv {
        table.to_csv()
    } else {
        table.to_markdown()
    }
}

fn report_output(args: &Args, reports: &[RunReport]) -> Result<String, CliError> {
    let mut out = render(&RunReport::table(reports), args.switch("csv"));
    if args.switch("economics") {
        let pricing = PricingModel::default();
        out.push('\n');
        out.push_str(&render(&pricing.table(reports), args.switch("csv")));
    }
    if let Some(path) = args.value("power-series") {
        // One file per report: a comparison writes `<stem>.<label>.csv`
        // rather than silently keeping only the last policy's trace.
        for r in reports {
            let target = if reports.len() == 1 {
                path.to_string()
            } else {
                let label = r.label.to_ascii_lowercase().replace([' ', '/'], "_");
                match path.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}.{label}.{ext}"),
                    None => format!("{path}.{label}"),
                }
            };
            let mut csv = String::from("t_secs,watts\n");
            let end = r
                .power_watts
                .points()
                .last()
                .map(|p| p.at)
                .unwrap_or(SimTime::ZERO);
            let samples: Vec<(SimTime, f64)> =
                r.power_watts
                    .resample(SimTime::ZERO, end, SimDuration::from_secs(60));
            for (t, w) in &samples {
                csv.push_str(&format!("{},{w:.1}\n", t.as_millis() / 1000));
            }
            std::fs::write(&target, csv)?;
            let watts: Vec<f64> = samples.iter().map(|&(_, w)| w).collect();
            out.push_str(&format!(
                "\n{} power over time: {}\npower series written to {target}\n",
                r.label,
                sparkline_fit(&watts, 72)
            ));
        }
    }
    Ok(out)
}

/// Writes the requested observability exports and returns summary lines.
fn export_obs(args: &Args, obs: &Obs) -> Result<String, CliError> {
    let mut out = String::new();
    if let Some(path) = args.value("trace-out") {
        std::fs::write(path, obs.export_jsonl())?;
        let (len, _, dropped) = obs.ring_stats().unwrap_or((0, 0, 0));
        out.push_str(&format!(
            "event trace written to {path} ({len} events, {dropped} dropped)\n"
        ));
    }
    if let Some(path) = args.value("chrome-out") {
        std::fs::write(path, obs.export_chrome())?;
        out.push_str(&format!(
            "chrome trace written to {path} ({} spans; open in chrome://tracing)\n",
            obs.spans_recorded()
        ));
    }
    if let Some(path) = args.value("metrics-out") {
        std::fs::write(path, obs.export_metrics())?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

/// Rejects observability flags on commands that run several simulations:
/// the exports would silently hold only interleaved or last-run data.
fn reject_obs_flags(args: &Args, cmd: &str) -> Result<(), CliError> {
    if obs_requested(args) {
        return Err(CliError::Usage(format!(
            "--{} are only supported by `eards run` (a {cmd} would mix \
             several runs in one trace)",
            OBS_FLAGS.join("/--")
        )));
    }
    Ok(())
}

fn run_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = parse_common(tokens)?;
    let policy_name = args.value("policy").unwrap_or("sb").to_string();
    let hosts = build_hosts(&args)?;
    let trace = build_trace(&args)?;
    let cfg = build_run_config(&args)?;
    let obs = cfg.obs.clone();
    let policy = make_policy(
        &policy_name,
        cfg.seed,
        &obs,
        overload_from(&cfg),
        cfg.shard_spec(),
    )?;
    let runner = Runner::new(hosts, trace, policy, cfg);
    let mut ckpt_note = String::new();
    let report = match args.get_opt::<u64>("checkpoint-every")? {
        None => {
            if args.value("checkpoint-out").is_some() {
                return Err(CliError::Usage(
                    "--checkpoint-out needs --checkpoint-every H".into(),
                ));
            }
            runner.run()
        }
        Some(0) => {
            return Err(CliError::Usage(
                "--checkpoint-every must be a positive hour count".into(),
            ))
        }
        Some(hours) => {
            let dir = args.value("checkpoint-out").ok_or_else(|| {
                CliError::Usage("--checkpoint-every needs --checkpoint-out DIR".into())
            })?;
            std::fs::create_dir_all(dir)?;
            // The provenance a resume replays, minus the checkpoint flags.
            let provenance = crate::checkpoint::strip_checkpoint_flags(tokens);
            let period = SimDuration::from_hours(hours);
            let mut next = SimDuration::ZERO + period;
            let mut written = 0u32;
            let mut runner = runner;
            while runner.step_batch() {
                if runner.now().as_millis() >= next.as_millis() {
                    let path = format!("{dir}/ckpt_t{}.bin", runner.now().as_millis());
                    let bytes = crate::checkpoint::encode_checkpoint(&provenance, &runner)
                        .map_err(|e| CliError::Snapshot(e.to_string()))?;
                    eards_sim::write_atomic(std::path::Path::new(&path), &bytes)?;
                    written += 1;
                    while runner.now().as_millis() >= next.as_millis() {
                        next += period;
                    }
                }
            }
            ckpt_note = format!("\n{written} checkpoint(s) written to {dir}\n");
            runner.finish().0
        }
    };
    let mut out = report_output(&args, std::slice::from_ref(&report))?;
    out.push_str(&ckpt_note);
    if obs.is_enabled() {
        out.push('\n');
        out.push_str(&export_obs(&args, &obs)?);
    }
    Ok(out)
}

/// Resumes a checkpoint file written by `eards run --checkpoint-every`:
/// rebuilds the world from the file's recorded arguments, restores the
/// snapshot into it, and drives the run to completion.
fn resume_cmd(tokens: &[String]) -> Result<String, CliError> {
    let Some(path) = tokens.first() else {
        return Err(CliError::Usage(
            "usage: eards resume <checkpoint file>".into(),
        ));
    };
    let data = std::fs::read(path)?;
    let (argv, snap) = crate::checkpoint::decode_checkpoint(&data)
        .map_err(|e| CliError::Snapshot(format!("{path}: {e}")))?;
    let args = parse_common(&argv)?;
    let policy_name = args.value("policy").unwrap_or("sb").to_string();
    let hosts = build_hosts(&args)?;
    let trace = build_trace(&args)?;
    let cfg = build_run_config(&args)?;
    let obs = cfg.obs.clone();
    let policy = make_policy(
        &policy_name,
        cfg.seed,
        &obs,
        overload_from(&cfg),
        cfg.shard_spec(),
    )?;
    let mut runner = Runner::restore(hosts, trace, policy, cfg, snap)
        .map_err(|e| CliError::Snapshot(format!("{path}: {e}")))?;
    while runner.step_batch() {}
    let (report, _) = runner.finish();
    let mut out = report_output(&args, std::slice::from_ref(&report))?;
    if obs.is_enabled() {
        out.push('\n');
        out.push_str(&export_obs(&args, &obs)?);
    }
    Ok(out)
}

fn compare_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = parse_common(tokens)?;
    reject_obs_flags(&args, "compare")?;
    let mut names = args.list("policies");
    if names.is_empty() {
        names = vec!["bf".into(), "dbf".into(), "sb".into()];
    }
    let hosts = build_hosts(&args)?;
    let trace = build_trace(&args)?;
    let cfg = build_run_config(&args)?;
    let mut reports = Vec::new();
    for name in &names {
        let policy = make_policy(
            name,
            cfg.seed,
            &cfg.obs,
            overload_from(&cfg),
            cfg.shard_spec(),
        )?;
        let report = Runner::new(hosts.clone(), trace.clone(), policy, cfg.clone()).run();
        reports.push(report);
    }
    report_output(&args, &reports)
}

fn parse_grid(args: &Args, flag: &str, default: &[u32]) -> Result<Vec<u32>, CliError> {
    let raw = args.list(flag);
    if raw.is_empty() {
        return Ok(default.to_vec());
    }
    raw.iter()
        .map(|s| {
            s.parse::<u32>()
                .map_err(|_| CliError::Usage(format!("--{flag}: {s:?} is not a percent")))
        })
        .collect()
}

fn sweep_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = parse_common(tokens)?;
    reject_obs_flags(&args, "sweep")?;
    let policy_name = args.value("policy").unwrap_or("sb").to_string();
    let hosts = build_hosts(&args)?;
    let trace = build_trace(&args)?;
    let base = build_run_config(&args)?;
    let min_grid = parse_grid(&args, "lambda-min-grid", &[10, 30, 50, 70])?;
    let max_grid = parse_grid(&args, "lambda-max-grid", &[50, 70, 90])?;
    let points = lambda_grid(&base, &min_grid, &max_grid);
    if points.is_empty() {
        return Err(CliError::Usage(
            "the λ grids produced no valid (min < max) pairs".into(),
        ));
    }
    let seed = base.seed;
    let ctl = overload_from(&base);
    let shards = base.shard_spec();
    let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    let reports = run_sweep(
        &hosts,
        &trace,
        || make_policy(&policy_name, seed, &Obs::disabled(), ctl, shards).expect("validated above"),
        points,
    );
    let mut t = Table::new(["setting", "Pwr (kWh)", "S (%)", "delay (%)", "Mig"]);
    for (label, r) in labels.iter().zip(&reports) {
        t.row([
            label.clone(),
            fnum(r.energy_kwh, 1),
            fnum(r.satisfaction_pct, 2),
            fnum(r.delay_pct, 2),
            r.migrations.to_string(),
        ]);
    }
    let mut out = render(&t, args.switch("csv"));
    if !args.switch("csv") && min_grid.len() > 1 && max_grid.len() > 1 {
        // Shade the λ surface (darker = more energy), like Fig. 2.
        let by_label: std::collections::HashMap<&str, f64> = labels
            .iter()
            .map(String::as_str)
            .zip(reports.iter().map(|r| r.energy_kwh))
            .collect();
        let cells: Vec<Vec<Option<f64>>> = min_grid
            .iter()
            .map(|lo| {
                max_grid
                    .iter()
                    .map(|hi| by_label.get(format!("λ{lo}-{hi}").as_str()).copied())
                    .collect()
            })
            .collect();
        let row_labels: Vec<String> = min_grid.iter().map(|v| format!("λmin {v}")).collect();
        let col_labels: Vec<String> = max_grid.iter().map(|v| v.to_string()).collect();
        out.push_str("\nenergy surface (kWh):\n");
        out.push_str(&heatmap(&row_labels, &col_labels, &cells));
    }
    Ok(out)
}

/// Validates exported observability files against the schemas the exporters
/// promise (`eards trace check --jsonl F --chrome F --metrics F`). Each
/// given file is parsed and schema-checked; the first problem is an error.
fn trace_check_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = ArgSpec::new(&["jsonl", "chrome", "metrics"], &[]).parse(tokens.to_vec())?;
    let mut out = String::new();
    if let Some(path) = args.value("jsonl") {
        let text = std::fs::read_to_string(path)?;
        let events =
            validate::validate_jsonl(&text).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
        out.push_str(&format!("{path}: ok ({events} events)\n"));
    }
    if let Some(path) = args.value("chrome") {
        let text = std::fs::read_to_string(path)?;
        let entries = validate::validate_chrome(&text)
            .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
        out.push_str(&format!("{path}: ok ({entries} trace events)\n"));
    }
    if let Some(path) = args.value("metrics") {
        let text = std::fs::read_to_string(path)?;
        validate::validate_metrics(&text).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
        out.push_str(&format!("{path}: ok\n"));
    }
    if out.is_empty() {
        return Err(CliError::Usage(
            "usage: eards trace check [--jsonl FILE] [--chrome FILE] [--metrics FILE] \
             (at least one)"
                .into(),
        ));
    }
    Ok(out)
}

fn trace_cmd(tokens: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = tokens.split_first() else {
        return Err(CliError::Usage(
            "usage: eards trace <generate|info|check> ...".into(),
        ));
    };
    if sub == "check" {
        // `check` has its own flag set (validated file paths, no workload
        // flags), so it parses before the common spec gets a chance to
        // reject them.
        return trace_check_cmd(rest);
    }
    let args = parse_common(rest)?;
    match sub.as_str() {
        "generate" => {
            let span = if let Some(h) = args.get_opt::<u64>("hours")? {
                SimDuration::from_hours(h)
            } else {
                SimDuration::from_days(args.get::<u64>("days", 7)?)
            };
            let cfg = SynthConfig {
                span,
                ..SynthConfig::grid5000_week()
            }
            .with_load_factor(args.get::<f64>("load-factor", 1.0)?);
            let trace = generate(&cfg, args.get::<u64>("trace-seed", 7)?);
            let text = write_swf(&trace);
            match args.value("out") {
                Some(path) => {
                    std::fs::write(path, &text)?;
                    Ok(format!(
                        "wrote {} jobs ({:.0} CPU·h) to {path}\n",
                        trace.len(),
                        trace.stats().total_cpu_hours
                    ))
                }
                None => Ok(text),
            }
        }
        "info" => {
            let Some(path) = args.positionals().first() else {
                return Err(CliError::Usage("usage: eards trace info <FILE.swf>".into()));
            };
            let text = std::fs::read_to_string(path)?;
            let trace = parse_swf(&text, &SwfOptions::default())
                .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
            let s = trace.stats();
            let mut t = Table::new(["metric", "value"]);
            t.row(["jobs".to_string(), s.jobs.to_string()]);
            t.row(["span".to_string(), format!("{}", s.span)]);
            t.row(["total CPU·hours".to_string(), fnum(s.total_cpu_hours, 1)]);
            t.row([
                "avg offered cores".to_string(),
                fnum(s.avg_offered_cores, 2),
            ]);
            t.row(["mean runtime (s)".to_string(), fnum(s.mean_runtime_secs, 0)]);
            t.row([
                "max CPU demand (%)".to_string(),
                s.max_cpu_demand.to_string(),
            ]);
            let mut out = String::new();
            if let Some(a) = analyze(&trace) {
                t.row(["interarrival CV".to_string(), fnum(a.interarrival_cv, 2)]);
                t.row(["largest batch".to_string(), a.max_batch.to_string()]);
                t.row([
                    "mass in busiest 10% hours".to_string(),
                    format!("{:.0}%", 100.0 * a.peak_hour_mass),
                ]);
                t.row([
                    "work in largest 10% jobs".to_string(),
                    format!("{:.0}%", 100.0 * a.top_decile_work_share),
                ]);
                if !args.switch("csv") {
                    let hourly: Vec<f64> = a.hourly_arrivals.iter().map(|&n| n as f64).collect();
                    out = format!(
                        "
arrivals per hour: {}
",
                        sparkline_fit(&hourly, 72)
                    );
                }
            }
            Ok(format!("{}{}", render(&t, args.switch("csv")), out))
        }
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand {other:?} (generate, info, check)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&[]).unwrap().contains("USAGE"));
        assert!(dispatch(&toks("help")).unwrap().contains("POLICIES"));
        assert!(dispatch(&toks("frobnicate")).is_err());
    }

    #[test]
    fn run_produces_a_table() {
        let out = dispatch(&toks("run --hosts 4 --hours 2 --policy bf")).unwrap();
        assert!(out.contains("| BF"), "{out}");
        assert!(out.contains("Pwr (kWh)"));
    }

    #[test]
    fn run_with_economics_and_csv() {
        let out = dispatch(&toks(
            "run --hosts 4 --hours 2 --policy sb --economics --csv",
        ))
        .unwrap();
        assert!(out.contains("Profit"), "{out}");
        assert!(out.contains("SB,"), "csv format: {out}");
    }

    #[test]
    fn compare_defaults_to_three_policies() {
        let out = dispatch(&toks("compare --hosts 4 --hours 2")).unwrap();
        for p in ["BF", "DBF", "SB"] {
            assert!(out.contains(&format!("| {p}")), "{out}");
        }
    }

    #[test]
    fn sweep_reports_each_grid_point() {
        let out = dispatch(&toks(
            "sweep --hosts 4 --hours 2 --lambda-min-grid 20,40 --lambda-max-grid 80",
        ))
        .unwrap();
        assert!(out.contains("λ20-80") && out.contains("λ40-80"), "{out}");
    }

    #[test]
    fn trace_generate_and_info_round_trip() {
        let dir = std::env::temp_dir().join("eards_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        let path_s = path.to_str().unwrap();
        let out = dispatch(&toks(&format!(
            "trace generate --hours 3 --trace-seed 5 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let info = dispatch(&toks(&format!("trace info {path_s}"))).unwrap();
        assert!(info.contains("total CPU·hours"), "{info}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(dispatch(&toks("run --lambda-min 95 --lambda-max 90")).is_err());
        assert!(dispatch(&toks("run --policy warp9")).is_err());
        assert!(dispatch(&toks("trace info /nonexistent/x.swf")).is_err());
    }

    #[test]
    fn run_exports_traces_that_pass_the_checker() {
        let dir = std::env::temp_dir().join("eards_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("events.jsonl");
        let chrome = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let (j, c, m) = (
            jsonl.to_str().unwrap(),
            chrome.to_str().unwrap(),
            metrics.to_str().unwrap(),
        );
        let out = dispatch(&toks(&format!(
            "run --hosts 4 --hours 2 --policy sb \
             --trace-out {j} --chrome-out {c} --metrics-out {m}"
        )))
        .unwrap();
        assert!(out.contains("event trace written"), "{out}");
        assert!(out.contains("chrome trace written"), "{out}");
        assert!(out.contains("metrics written"), "{out}");
        let check = dispatch(&toks(&format!(
            "trace check --jsonl {j} --chrome {c} --metrics {m}"
        )))
        .unwrap();
        assert_eq!(check.matches(": ok").count(), 3, "{check}");
        // The run actually produced events (scheduling rounds at minimum).
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(
            text.lines().any(|l| l.contains("\"schedule_round\"")),
            "expected schedule_round events in the trace"
        );
        assert!(
            text.lines().any(|l| l.contains("\"score_attribution\"")),
            "expected per-placement score attributions in the trace"
        );
        for p in [&jsonl, &chrome, &metrics] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn trace_check_rejects_garbage_and_empty_invocations() {
        let dir = std::env::temp_dir().join("eards_cli_obs_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"kind\":\"x\"}\n").unwrap(); // missing t_ms
        let bad_s = bad.to_str().unwrap();
        assert!(dispatch(&toks(&format!("trace check --jsonl {bad_s}"))).is_err());
        assert!(dispatch(&toks("trace check")).is_err(), "no files given");
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn checkpoint_resume_round_trip_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("eards_cli_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_str().unwrap();
        let common = "run --hosts 4 --hours 3 --policy sb --seed 11 --csv";
        let baseline = dispatch(&toks(common)).unwrap();
        let out = dispatch(&toks(&format!(
            "{common} --checkpoint-every 1 --checkpoint-out {dir_s}"
        )))
        .unwrap();
        assert!(out.contains("checkpoint(s) written"), "{out}");
        // Checkpointing (snapshot takes &self) must not perturb the run.
        assert!(
            out.starts_with(baseline.trim_end()),
            "{out}\nvs\n{baseline}"
        );
        let mut ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        ckpts.sort();
        assert!(!ckpts.is_empty(), "at least one checkpoint file");
        // Resuming any checkpoint reproduces the uninterrupted report.
        for ckpt in [&ckpts[0], ckpts.last().unwrap()] {
            let resumed = dispatch(&toks(&format!("resume {}", ckpt.display()))).unwrap();
            assert_eq!(resumed, baseline, "resume from {}", ckpt.display());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flag_validation() {
        assert!(dispatch(&toks("run --hosts 4 --hours 1 --checkpoint-out /tmp/x")).is_err());
        assert!(dispatch(&toks("run --hosts 4 --hours 1 --checkpoint-every 1")).is_err());
        assert!(dispatch(&toks(
            "run --hosts 4 --hours 1 --checkpoint-every 0 --checkpoint-out /tmp/x"
        ))
        .is_err());
        assert!(dispatch(&toks("resume")).is_err());
        assert!(dispatch(&toks("resume /nonexistent/ckpt.bin")).is_err());
    }

    #[test]
    fn obs_flags_rejected_outside_run() {
        assert!(dispatch(&toks(
            "compare --hosts 4 --hours 2 --trace-out /tmp/t.jsonl"
        ))
        .is_err());
        assert!(dispatch(&toks("sweep --hosts 4 --hours 2 --metrics-out /tmp/m.json")).is_err());
    }
}
