//! # eards-cli — command-line interface to the EARDS simulator
//!
//! ```text
//! eards run --paper-dc --days 7 --policy sb --lambda-min 40 --economics
//! eards compare --policies bf,dbf,sb --paper-dc --days 7
//! eards sweep --lambda-min-grid 10,30,50 --lambda-max-grid 70,90
//! eards trace generate --days 7 --out week.swf
//! eards trace info week.swf
//! ```
//!
//! Argument parsing is hand-rolled (see [`args`]) to keep the dependency
//! set to the workspace crates.

#![warn(missing_docs)]

pub mod args;
pub mod checkpoint;
pub mod commands;
pub mod farm;
pub mod lint;
pub mod setup;

pub use commands::{dispatch, USAGE};
pub use setup::CliError;
