//! Checkpoint files: run provenance plus a [`Runner`] snapshot.
//!
//! A checkpoint must be resumable by a fresh process, so the file carries
//! two parts behind one snapshot header:
//!
//! 1. **provenance** — the original `eards run` argument tokens (minus the
//!    checkpoint flags themselves), re-parsed on resume to rebuild the
//!    world the snapshot validates against: hosts, trace, policy, config;
//! 2. **state** — the raw [`Runner::snapshot`] payload (self-delimiting:
//!    it opens with its own magic + version), which restores the
//!    mid-flight engine, cluster, fault streams and metrics.
//!
//! Keeping the argv as the provenance (rather than re-serializing each
//! built object) means a resume goes through exactly the same
//! construction code path as the original run — one source of truth for
//! how flags become a world.

use eards_datacenter::Runner;
use eards_sim::{read_header, write_header, PersistError, Reader, Writer};

/// Encodes a checkpoint file: header, provenance argv, snapshot payload.
///
/// Fails only if the provenance or the runner snapshot overflows the
/// codec's `u32` length prefix — surfaced as a typed error so the CLI
/// reports it instead of panicking mid-run.
pub fn encode_checkpoint(argv: &[String], runner: &Runner) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    write_header(&mut w);
    w.put_len(argv.len());
    for a in argv {
        w.put_str(a);
    }
    let mut out = w.into_bytes()?;
    out.extend_from_slice(&runner.snapshot()?);
    Ok(out)
}

/// Decodes a checkpoint file into `(provenance argv, snapshot payload)`.
pub fn decode_checkpoint(data: &[u8]) -> Result<(Vec<String>, &[u8]), PersistError> {
    let mut r = Reader::new(data);
    read_header(&mut r)?;
    let n = r.get_len()?;
    let mut argv = Vec::with_capacity(n);
    for _ in 0..n {
        argv.push(r.get_str()?);
    }
    // Everything after the provenance is the runner snapshot, handed back
    // raw so `Runner::restore` can validate its own header.
    Ok((argv, &data[data.len() - r.remaining()..]))
}

/// Drops `--checkpoint-every`/`--checkpoint-out` (and their values) from a
/// token stream: a resumed run finishes in one go rather than re-writing
/// checkpoints over the originals.
pub fn strip_checkpoint_flags(tokens: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut iter = tokens.iter();
    while let Some(t) = iter.next() {
        match t.as_str() {
            "--checkpoint-every" | "--checkpoint-out" => {
                iter.next();
            }
            s if s.starts_with("--checkpoint-every=") || s.starts_with("--checkpoint-out=") => {}
            _ => out.push(t.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn strip_removes_both_flag_forms() {
        let argv = toks(
            "--hosts 4 --checkpoint-every 2 --hours 3 \
             --checkpoint-out /tmp/c --checkpoint-every=5 --seed 9",
        );
        assert_eq!(
            strip_checkpoint_flags(&argv),
            toks("--hosts 4 --hours 3 --seed 9")
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_checkpoint(b"not a checkpoint").is_err());
        assert!(decode_checkpoint(&[]).is_err());
    }
}
