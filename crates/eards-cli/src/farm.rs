//! `eards sweep` farm mode and the `sweep-worker` subcommand.
//!
//! Farm mode turns a seed × policy × chaos grid into supervised worker
//! processes (see `eards-sweep`): each shard runs in its own `eards
//! sweep-worker` child, heartbeating over stdout, checkpointing
//! atomically, and being retried (resuming from its last checkpoint) if
//! it crashes, is killed, or hangs. `--serial` runs the same shards
//! in-process through the **same world-building and rendering code
//! path**, which is what makes the merged `report.csv`/`report.jsonl`
//! of a parallel run byte-identical to a serial run — the property the
//! integration suite locks in under injected SIGKILLs.
//!
//! Worker checkpoints and results are written with
//! [`eards_sim::write_atomic`], so a SIGKILL mid-write can never leave a
//! torn file for the retry to trip over.

use std::path::{Path, PathBuf};
use std::time::Duration;

use eards_datacenter::Runner;
use eards_model::FaultPlan;
use eards_obs::Obs;
use eards_sim::SimDuration;
use eards_sweep::{
    merge, protocol, render, run_farm, to_merge_entries, FarmConfig, MergeEntry, ShardSpec,
    ShardStatus, SweepGrid, WorkerPlan,
};

use crate::args::{ArgSpec, Args};
use crate::setup::{
    build_hosts, build_run_config, build_trace, make_policy, obs_requested, overload_from,
    CliError, COMMON_SWITCHES, COMMON_VALUED, OBS_CAPACITY, OBS_FLAGS,
};

/// Farm-only valued flags. Flags in [`FORWARDED_VALUED`] are passed on
/// to workers; the rest configure the supervisor and are stripped from
/// worker command lines.
const FARM_VALUED: &[&str] = &[
    "seeds",
    "chaos-grid",
    "jobs",
    "sweep-out",
    "shard-timeout-secs",
    "max-retries",
    "backoff-ms",
    "inject-kill",
    "kill-after-hours",
    "ckpt-every-hours",
    "inject-hang",
    "hang-after-hours",
    "dawdle-ms",
];

/// Farm-only boolean switches.
const FARM_SWITCHES: &[&str] = &["serial", "shard-metrics"];

/// Valued farm flags the workers also understand (test hooks and the
/// checkpoint cadence); everything else in [`FARM_VALUED`] is
/// supervisor-side and stripped by [`strip_farm_flags`].
const FORWARDED_VALUED: &[&str] = &[
    "ckpt-every-hours",
    "inject-hang",
    "hang-after-hours",
    "dawdle-ms",
];

/// Worker-only valued flags (the per-shard identity appended by the
/// supervisor, matching `eards_sweep::supervisor::shard_args`).
const WORKER_VALUED: &[&str] = &[
    "shard-key",
    "shard-seed",
    "shard-policy",
    "shard-chaos",
    "workdir",
    "resume-ckpt",
];

fn concat(parts: &[&[&'static str]]) -> Vec<&'static str> {
    parts.iter().flat_map(|p| p.iter().copied()).collect()
}

/// True if the token stream asks for farm mode rather than the legacy
/// in-process λ sweep.
pub fn farm_requested(tokens: &[String]) -> bool {
    const TRIGGERS: &[&str] = &["seeds", "chaos-grid", "jobs", "sweep-out", "serial"];
    tokens.iter().any(|t| {
        t.strip_prefix("--").is_some_and(|f| {
            let name = f.split_once('=').map_or(f, |(n, _)| n);
            TRIGGERS.contains(&name)
        })
    })
}

/// Drops supervisor-only flags (and their values) from a token stream,
/// leaving the world flags plus the forwarded worker flags.
pub fn strip_farm_flags(tokens: &[String]) -> Vec<String> {
    let stripped_valued: Vec<&str> = FARM_VALUED
        .iter()
        .copied()
        .filter(|f| !FORWARDED_VALUED.contains(f))
        .collect();
    let mut out = Vec::new();
    let mut iter = tokens.iter();
    while let Some(t) = iter.next() {
        if let Some(f) = t.strip_prefix("--") {
            if let Some((name, _)) = f.split_once('=') {
                if stripped_valued.contains(&name) || name == "serial" {
                    continue;
                }
            } else if stripped_valued.contains(&f) {
                iter.next();
                continue;
            } else if f == "serial" {
                continue;
            }
        }
        out.push(t.clone());
    }
    out
}

fn parse_farm(tokens: &[String]) -> Result<Args, CliError> {
    let valued = concat(&[COMMON_VALUED, FARM_VALUED]);
    let switches = concat(&[COMMON_SWITCHES, FARM_SWITCHES]);
    Ok(ArgSpec::new(&valued, &switches).parse(tokens.to_vec())?)
}

fn parse_worker(tokens: &[String]) -> Result<Args, CliError> {
    let valued = concat(&[COMMON_VALUED, FARM_VALUED, WORKER_VALUED]);
    let switches = concat(&[COMMON_SWITCHES, FARM_SWITCHES]);
    Ok(ArgSpec::new(&valued, &switches).parse(tokens.to_vec())?)
}

/// Builds the sweep grid from `--seeds`, `--policies` and `--chaos-grid`,
/// defaulting each missing axis to the corresponding single-run flag.
fn build_grid(args: &Args) -> Result<SweepGrid, CliError> {
    let seeds = {
        let raw = args.list("seeds");
        if raw.is_empty() {
            vec![build_run_config(args)?.seed]
        } else {
            raw.iter()
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|_| CliError::Usage(format!("--seeds: {s:?} is not a seed")))
                })
                .collect::<Result<_, _>>()?
        }
    };
    let policies = {
        let mut names = args.list("policies");
        if names.is_empty() {
            names = vec![args.value("policy").unwrap_or("sb").to_string()];
        }
        for name in &names {
            make_policy(name, 0, &Obs::disabled(), None, None)?;
        }
        names
    };
    let chaos = {
        let raw = args.list("chaos-grid");
        if raw.is_empty() {
            vec![args.get_opt::<f64>("chaos")?.unwrap_or(0.0)]
        } else {
            raw.iter()
                .map(|s| match s.parse::<f64>() {
                    Ok(x) if x >= 0.0 => Ok(x),
                    _ => Err(CliError::Usage(format!(
                        "--chaos-grid: {s:?} is not a non-negative intensity"
                    ))),
                })
                .collect::<Result<_, _>>()?
        }
    };
    Ok(SweepGrid {
        seeds,
        policies,
        chaos,
    })
}

/// Builds one shard's world. Both the serial path and the worker call
/// this — one source of truth for how a grid cell becomes a simulation,
/// which is what the byte-identity guarantee rests on.
///
/// A chaos intensity of 0 keeps the base fault configuration from the
/// common flags (`--failures`/`--chaos`); a positive intensity replaces
/// it with `FaultPlan::chaos(x)`.
fn shard_runner(args: &Args, spec: &ShardSpec, obs: &Obs) -> Result<Runner, CliError> {
    let hosts = build_hosts(args)?;
    let trace = build_trace(args)?;
    let mut cfg = build_run_config(args)?;
    cfg.seed = spec.seed;
    if spec.chaos > 0.0 {
        cfg = cfg.with_faults(FaultPlan::chaos(spec.chaos));
    }
    cfg = cfg.with_obs(obs.clone());
    let policy = make_policy(
        &spec.policy,
        cfg.seed,
        &cfg.obs,
        overload_from(&cfg),
        cfg.shard_spec(),
    )?;
    Ok(Runner::new(hosts, trace, policy, cfg))
}

fn shard_obs(args: &Args) -> Obs {
    if args.switch("shard-metrics") {
        Obs::enabled(OBS_CAPACITY)
    } else {
        Obs::disabled()
    }
}

fn write_shard_metrics(workdir: &Path, key: &str, obs: &Obs) -> Result<(), CliError> {
    if obs.is_enabled() {
        let dir = workdir.join(key);
        std::fs::create_dir_all(&dir)?;
        eards_sim::write_atomic(&dir.join("metrics.json"), obs.export_metrics().as_bytes())?;
    }
    Ok(())
}

/// Runs the whole grid in-process, one shard after another. The
/// reference implementation the farm is compared against.
fn run_serial(
    args: &Args,
    shards: &[ShardSpec],
    workdir: &Path,
) -> Result<Vec<MergeEntry>, CliError> {
    let mut entries = Vec::with_capacity(shards.len());
    for spec in shards {
        let obs = shard_obs(args);
        let report = shard_runner(args, spec, &obs)?.run();
        write_shard_metrics(workdir, &spec.key(), &obs)?;
        entries.push(MergeEntry {
            spec: spec.clone(),
            status: ShardStatus::Ok,
            rendered: render(spec, &report),
        });
    }
    Ok(entries)
}

/// Merges the per-shard metrics snapshots (when `--shard-metrics` was
/// given) into `<out>/metrics.json`. Quarantined shards have no
/// snapshot and are skipped; the summary notes how many were missing.
fn rollup_metrics(
    workdir: &Path,
    out_dir: &Path,
    entries: &[MergeEntry],
) -> Result<String, CliError> {
    let mut inputs = Vec::new();
    let mut missing = 0usize;
    for e in entries {
        let path = workdir.join(e.spec.key()).join("metrics.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => inputs.push((e.spec.key(), text)),
            Err(_) => missing += 1,
        }
    }
    let merged = eards_obs::rollup::merge_metrics(&inputs)
        .map_err(|e| CliError::Usage(format!("metrics rollup: {e}")))?;
    let path = out_dir.join("metrics.json");
    eards_sim::write_atomic(&path, merged.as_bytes())?;
    let mut note = format!(
        "metrics rollup ({} shards) written to {}\n",
        inputs.len(),
        path.display()
    );
    if missing > 0 {
        note.push_str(&format!("  ({missing} shard(s) had no metrics snapshot)\n"));
    }
    Ok(note)
}

/// `eards sweep` in farm mode.
pub fn farm_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = parse_farm(tokens)?;
    if obs_requested(&args) {
        return Err(CliError::Usage(format!(
            "--{} are only supported by `eards run` (use --shard-metrics for \
             a per-shard metrics rollup)",
            OBS_FLAGS.join("/--")
        )));
    }
    let grid = build_grid(&args)?;
    let shards = grid.shards();
    if shards.is_empty() {
        return Err(CliError::Usage(
            "the sweep grid is empty (check --seeds/--policies/--chaos-grid)".into(),
        ));
    }
    let Some(out_dir) = args.value("sweep-out") else {
        return Err(CliError::Usage(
            "farm mode needs --sweep-out DIR for the merged report".into(),
        ));
    };
    let out_dir = PathBuf::from(out_dir);
    std::fs::create_dir_all(&out_dir)?;
    let workdir = out_dir.join("work");

    let mut summary = format!(
        "sweep grid: {} shard(s) ({} seed × {} policy × {} chaos)\n",
        shards.len(),
        grid.seeds.len(),
        grid.policies.len(),
        grid.chaos.len()
    );

    let entries = if args.switch("serial") {
        summary.push_str("mode: serial (in-process reference)\n");
        run_serial(&args, &shards, &workdir)?
    } else {
        let jobs = args.get::<usize>("jobs", 1)?;
        let mut cfg = FarmConfig::new(workdir.clone());
        cfg.jobs = jobs;
        cfg.shard_timeout = Duration::from_secs(args.get::<u64>("shard-timeout-secs", 300)?);
        cfg.max_attempts = args.get::<u32>("max-retries", 2)? + 1;
        cfg.backoff_base = Duration::from_millis(args.get::<u64>("backoff-ms", 100)?);
        cfg.inject_kill = args.list("inject-kill");
        cfg.inject_kill_after_ms = (args.get::<f64>("kill-after-hours", 1.0)? * 3_600_000.0) as u64;
        let plan = WorkerPlan {
            program: std::env::current_exe()?,
            base_args: std::iter::once("sweep-worker".to_string())
                .chain(strip_farm_flags(tokens))
                .collect(),
        };
        summary.push_str(&format!("mode: farm, jobs={}\n", cfg.jobs.max(1)));
        let outcomes = run_farm(shards.clone(), &plan, &cfg, &mut |msg| {
            eprintln!("sweep: {msg}");
        })
        .map_err(CliError::Usage)?;
        for o in &outcomes {
            if o.attempts > 1 || o.status == ShardStatus::Quarantined {
                summary.push_str(&format!(
                    "  shard {}: {} after {} attempt(s){}{}\n",
                    o.spec.key(),
                    match o.status {
                        ShardStatus::Ok => "ok",
                        ShardStatus::Quarantined => "QUARANTINED",
                    },
                    o.attempts,
                    if o.resumed {
                        ", resumed from checkpoint"
                    } else {
                        ""
                    },
                    if o.injected_kill {
                        ", injected kill"
                    } else {
                        ""
                    },
                ));
            }
        }
        let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
        let resumed = outcomes.iter().filter(|o| o.resumed).count();
        summary.push_str(&format!(
            "retried: {retried} shard(s), resumed: {resumed} shard(s)\n"
        ));
        to_merge_entries(&outcomes)
    };

    let quarantined = entries
        .iter()
        .filter(|e| e.status == ShardStatus::Quarantined)
        .count();
    let merged = merge(entries.clone(), shards.len()).map_err(CliError::Usage)?;
    let csv_path = out_dir.join("report.csv");
    let jsonl_path = out_dir.join("report.jsonl");
    eards_sim::write_atomic(&csv_path, merged.csv.as_bytes())?;
    eards_sim::write_atomic(&jsonl_path, merged.jsonl.as_bytes())?;
    summary.push_str(&format!(
        "ok: {}, quarantined: {quarantined}{}\n",
        entries.len() - quarantined,
        if merged.partial {
            " — report is PARTIAL"
        } else {
            ""
        }
    ));
    summary.push_str(&format!(
        "merged report written to {} and {}\n",
        csv_path.display(),
        jsonl_path.display()
    ));
    if args.switch("shard-metrics") {
        summary.push_str(&rollup_metrics(&workdir, &out_dir, &entries)?);
    }
    Ok(summary)
}

/// The `sweep-worker` subcommand: runs one shard, speaking the
/// `eards-sweep` protocol on stdout. Not meant to be invoked by hand —
/// the supervisor appends the `--shard-*` identity flags itself.
pub fn worker_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = parse_worker(tokens)?;
    let (Some(key), Some(workdir)) = (args.value("shard-key"), args.value("workdir")) else {
        return Err(CliError::Usage(
            "sweep-worker needs --shard-key and --workdir (it is spawned by `eards sweep`)".into(),
        ));
    };
    let spec = ShardSpec {
        index: 0, // the supervisor tracks the grid position; the worker only needs the identity
        seed: args.get::<u64>("shard-seed", 0)?,
        policy: args.value("shard-policy").unwrap_or("sb").to_string(),
        chaos: args.get::<f64>("shard-chaos", 0.0)?,
    };
    let workdir = PathBuf::from(workdir);
    let shard_dir = workdir.join(key);
    std::fs::create_dir_all(&shard_dir)?;

    let obs = shard_obs(&args);
    let say = |msg: &protocol::WorkerMsg| println!("{}", protocol::encode(msg));
    say(&protocol::WorkerMsg::Start {
        key: key.to_string(),
    });

    // Resume from the previous attempt's checkpoint when the supervisor
    // hands one over; a corrupt or mismatched checkpoint is a warning
    // (the shard restarts from scratch), never a worker death.
    let mut runner = None;
    if let Some(ckpt) = args.value("resume-ckpt") {
        let restored = std::fs::read(ckpt)
            .map_err(|e| e.to_string())
            .and_then(|bytes| {
                let hosts = build_hosts(&args).map_err(|e| e.to_string())?;
                let trace = build_trace(&args).map_err(|e| e.to_string())?;
                let mut cfg = build_run_config(&args).map_err(|e| e.to_string())?;
                cfg.seed = spec.seed;
                if spec.chaos > 0.0 {
                    cfg = cfg.with_faults(FaultPlan::chaos(spec.chaos));
                }
                cfg = cfg.with_obs(obs.clone());
                let policy = make_policy(
                    &spec.policy,
                    cfg.seed,
                    &cfg.obs,
                    overload_from(&cfg),
                    cfg.shard_spec(),
                )
                .map_err(|e| e.to_string())?;
                Runner::restore(hosts, trace, policy, cfg, &bytes).map_err(|e| e.to_string())
            });
        match restored {
            Ok(r) => runner = Some(r),
            Err(e) => say(&protocol::WorkerMsg::Warn {
                msg: format!("checkpoint {ckpt} unusable ({e}); starting fresh"),
            }),
        }
    }
    let mut runner = match runner {
        Some(r) => r,
        None => shard_runner(&args, &spec, &obs)?,
    };

    let ckpt_period = args
        .get_opt::<f64>("ckpt-every-hours")?
        .map(|h| SimDuration::from_secs((h * 3600.0) as u64));
    let ckpt_file = shard_dir.join("ckpt.bin");
    let mut next_ckpt = ckpt_period.map(|p| runner.now() + p);

    // Test hooks, used by the integration suite and CI smoke:
    // `--inject-hang` makes the matching shards stop heartbeating at a
    // given simulated hour; `--dawdle-ms` slows every batch so the
    // supervisor has a window to observe and kill the worker.
    let hang = args.list("inject-hang").iter().any(|k| k == key);
    let hang_after_ms = (args.get::<f64>("hang-after-hours", 1.0)? * 3_600_000.0) as u64;
    let dawdle = Duration::from_millis(args.get::<u64>("dawdle-ms", 0)?);

    while runner.step_batch() {
        let now = runner.now();
        if let (Some(period), Some(next)) = (ckpt_period, next_ckpt) {
            if now >= next {
                let bytes = runner
                    .snapshot()
                    .map_err(|e| CliError::Snapshot(e.to_string()))?;
                eards_sim::write_atomic(&ckpt_file, &bytes)?;
                say(&protocol::WorkerMsg::Checkpoint {
                    path: ckpt_file.display().to_string(),
                });
                let mut next = next;
                while now >= next {
                    next += period;
                }
                next_ckpt = Some(next);
            }
        }
        say(&protocol::WorkerMsg::Progress {
            sim_ms: now.as_millis(),
        });
        if hang && now.as_millis() >= hang_after_ms {
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        if !dawdle.is_zero() {
            std::thread::sleep(dawdle);
        }
    }
    let (report, _) = runner.finish();
    write_shard_metrics(&workdir, key, &obs)?;
    let rendered = render(&spec, &report);
    let result_path = shard_dir.join("result.txt");
    eards_sim::write_atomic(
        &result_path,
        eards_sweep::result::to_result_file(&rendered).as_bytes(),
    )?;
    say(&protocol::WorkerMsg::Result {
        path: result_path.display().to_string(),
    });
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn farm_detection() {
        assert!(farm_requested(&toks("--seeds 1,2 --hosts 4")));
        assert!(farm_requested(&toks("--jobs 4")));
        assert!(farm_requested(&toks("--sweep-out=/tmp/x")));
        assert!(farm_requested(&toks("--serial --hosts 4")));
        assert!(!farm_requested(&toks(
            "--hosts 4 --lambda-min-grid 10,20 --lambda-max-grid 90"
        )));
    }

    #[test]
    fn strip_keeps_world_and_forwarded_flags() {
        let out = strip_farm_flags(&toks(
            "--hosts 4 --seeds 1,2 --jobs 3 --sweep-out /tmp/x --serial \
             --ckpt-every-hours 1 --dawdle-ms 5 --seed 9 --max-retries=2",
        ));
        assert_eq!(
            out,
            toks("--hosts 4 --ckpt-every-hours 1 --dawdle-ms 5 --seed 9")
        );
    }

    #[test]
    fn grid_defaults_to_single_run_flags() {
        let args = parse_farm(&toks("--seed 5 --policy bf --chaos 1.5 --serial")).unwrap();
        let grid = build_grid(&args).unwrap();
        assert_eq!(grid.seeds, vec![5]);
        assert_eq!(grid.policies, vec!["bf".to_string()]);
        assert_eq!(grid.chaos, vec![1.5]);
    }

    #[test]
    fn grid_axes_parse_and_validate() {
        let args = parse_farm(&toks(
            "--seeds 1,2 --policies bf,sb --chaos-grid 0,1 --serial",
        ))
        .unwrap();
        let grid = build_grid(&args).unwrap();
        assert_eq!(grid.len(), 8);
        let bad = parse_farm(&toks("--seeds x --serial")).unwrap();
        assert!(build_grid(&bad).is_err());
        let bad = parse_farm(&toks("--policies warp9 --serial")).unwrap();
        assert!(build_grid(&bad).is_err());
        let bad = parse_farm(&toks("--chaos-grid -1 --serial")).unwrap();
        assert!(build_grid(&bad).is_err());
    }

    #[test]
    fn serial_farm_writes_merged_reports() {
        let dir = std::env::temp_dir().join(format!("eards-farm-serial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = farm_cmd(&toks(&format!(
            "--hosts 4 --hours 2 --seeds 3,4 --policies sb --serial --sweep-out {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("2 shard(s)"), "{out}");
        let csv = std::fs::read_to_string(dir.join("report.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("s3-sb-x0,3,sb,0,ok,"));
        let jsonl = std::fs::read_to_string(dir.join("report.jsonl")).unwrap();
        assert!(jsonl.starts_with("{\"kind\":\"sweep_report\",\"shards\":2,\"ok\":2,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn farm_mode_rejects_missing_out_and_obs_flags() {
        assert!(farm_cmd(&toks("--hosts 4 --hours 2 --serial")).is_err());
        assert!(farm_cmd(&toks(
            "--hosts 4 --serial --sweep-out /tmp/x --trace-out /tmp/t.jsonl"
        ))
        .is_err());
        assert!(
            worker_cmd(&toks("--hosts 4")).is_err(),
            "worker needs identity"
        );
    }
}
