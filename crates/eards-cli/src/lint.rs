//! `eards lint` — the determinism/simulation-safety gate over the
//! workspace sources (see the `eards-lint` crate for the rules).

use std::path::PathBuf;

use eards_lint::{find_workspace_root, lint_workspace, report, Baseline};

use crate::args::ArgSpec;
use crate::setup::CliError;

/// Default baseline location, workspace-relative.
pub const DEFAULT_BASELINE: &str = "lint-baseline.toml";

/// Runs the lint gate.
///
/// `eards lint [--baseline FILE] [--format text|json] [--write-baseline]
/// [--root DIR]`
///
/// Exit behavior: clean runs return the report as normal output;
/// new findings return [`CliError::Lint`] so the binary exits 1 with
/// the report on stdout.
pub fn lint_cmd(tokens: &[String]) -> Result<String, CliError> {
    let args = ArgSpec::new(&["baseline", "format", "root"], &["write-baseline"])
        .parse(tokens.to_vec())?;
    let format = args.value("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(CliError::Usage(format!(
            "--format must be text or json, not {format:?}"
        )));
    }
    let root = match args.value("root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()?;
            find_workspace_root(&cwd).ok_or_else(|| {
                CliError::Usage(
                    "not inside a cargo workspace (no Cargo.toml with [workspace] above \
                     the current directory); pass --root DIR"
                        .into(),
                )
            })?
        }
    };
    let run = lint_workspace(&root)?;

    let baseline_path = root.join(args.value("baseline").unwrap_or(DEFAULT_BASELINE));
    if args.switch("write-baseline") {
        let text = Baseline::render(&run.findings);
        std::fs::write(&baseline_path, &text)?;
        return Ok(format!(
            "lint: {} files scanned; baseline with {} finding(s) written to {}\n",
            run.files,
            run.findings.len(),
            baseline_path.display()
        ));
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(CliError::Usage)?,
        // No baseline file is fine: everything is "new".
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(CliError::Io(e)),
    };
    let outcome = baseline.apply(run.findings);
    let rendered = match format {
        "json" => report::render_json(run.files, &outcome),
        _ => report::render_text(run.files, &outcome),
    };
    if outcome.new.is_empty() {
        Ok(rendered)
    } else {
        Err(CliError::Lint(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// Builds a scratch "workspace" with one offending file and lints it.
    fn scratch(name: &str, file_rel: &str, src: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("eards_lint_cli_{name}"));
        let file = root.join(file_rel);
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(&file, src).unwrap();
        root
    }

    #[test]
    fn clean_tree_passes_and_json_is_shaped() {
        let root = scratch(
            "clean",
            "crates/eards-model/src/ok.rs",
            "pub fn f(x: f64, y: f64) -> std::cmp::Ordering { x.total_cmp(&y) }\n",
        );
        let out = lint_cmd(&toks(&format!("--root {}", root.display()))).unwrap();
        assert!(out.contains("0 new"), "{out}");
        let json = lint_cmd(&toks(&format!("--root {} --format json", root.display()))).unwrap();
        assert!(json.contains("\"new\":[]"), "{json}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn findings_fail_until_baselined() {
        let root = scratch(
            "dirty",
            "crates/eards-model/src/bad.rs",
            "pub fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        );
        let err = lint_cmd(&toks(&format!("--root {}", root.display()))).unwrap_err();
        match err {
            CliError::Lint(report) => assert!(report.contains("D004"), "{report}"),
            other => panic!("expected lint failure, got {other:?}"),
        }
        // Grandfather it, then the same tree passes.
        let wrote = lint_cmd(&toks(&format!(
            "--root {} --write-baseline",
            root.display()
        )))
        .unwrap();
        assert!(wrote.contains("baseline"), "{wrote}");
        let out = lint_cmd(&toks(&format!("--root {}", root.display()))).unwrap();
        assert!(out.contains("grandfathered"), "{out}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn bad_format_is_a_usage_error() {
        assert!(matches!(
            lint_cmd(&toks("--format yaml")),
            Err(CliError::Usage(_))
        ));
    }
}
