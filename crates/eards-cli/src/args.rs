//! Minimal command-line argument parsing (no external dependencies).
//!
//! Grammar: `eards <command> [<subcommand>] [positionals] [--flag value]
//! [--switch]`. Flags are declared up front as valued or boolean, so
//! `--failures --seed 7` parses unambiguously.

use std::collections::{HashMap, HashSet};

/// Parsed arguments: positionals in order plus flag lookups.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

/// Errors raised while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--flag` was not declared.
    UnknownFlag(String),
    /// A valued flag had no value.
    MissingValue(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// Target type name.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Declares the accepted flags and parses a token stream.
pub struct ArgSpec {
    valued: HashSet<&'static str>,
    boolean: HashSet<&'static str>,
}

impl ArgSpec {
    /// Builds a spec from the valued and boolean flag names (without
    /// leading dashes).
    pub fn new(valued: &[&'static str], boolean: &[&'static str]) -> Self {
        ArgSpec {
            valued: valued.iter().copied().collect(),
            boolean: boolean.iter().copied().collect(),
        }
    }

    /// Parses tokens (not including the program/command names).
    pub fn parse<I: IntoIterator<Item = String>>(&self, tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                // Support --flag=value too.
                if let Some((name, value)) = flag.split_once('=') {
                    if !self.valued.contains(name) {
                        return Err(ArgError::UnknownFlag(name.into()));
                    }
                    args.values.insert(name.into(), value.into());
                } else if self.boolean.contains(flag) {
                    args.switches.insert(flag.into());
                } else if self.valued.contains(flag) {
                    match iter.next() {
                        Some(v) => {
                            args.values.insert(flag.into(), v);
                        }
                        None => return Err(ArgError::MissingValue(flag.into())),
                    }
                } else {
                    return Err(ArgError::UnknownFlag(flag.into()));
                }
            } else {
                args.positionals.push(tok);
            }
        }
        Ok(args)
    }
}

impl Args {
    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// True if a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Raw string value of a flag.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Typed flag lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: raw.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Typed optional flag lookup.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: raw.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Comma-separated list flag (`--policies bf,sb,dbf`); empty items
    /// (stray commas) are dropped.
    pub fn list(&self, name: &str) -> Vec<String> {
        self.values
            .get(name)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec::new(&["seed", "days", "policies"], &["failures", "economics"])
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_mixed_flags() {
        let a = spec()
            .parse(toks("input.swf --seed 7 --failures --days 3"))
            .unwrap();
        assert_eq!(a.positionals(), ["input.swf"]);
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get::<u64>("days", 1).unwrap(), 3);
        assert!(a.switch("failures"));
        assert!(!a.switch("economics"));
    }

    #[test]
    fn equals_syntax() {
        let a = spec().parse(toks("--seed=42")).unwrap();
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 42);
    }

    #[test]
    fn list_flag() {
        let a = spec().parse(toks("--policies bf, sb ,dbf")).unwrap();
        // Note: shell would pass "bf," "sb" ",dbf" differently; the flag
        // value here is the single token "bf,".
        assert_eq!(a.list("policies"), ["bf"]);
        let a = spec().parse(toks("--policies bf,sb,dbf")).unwrap();
        assert_eq!(a.list("policies"), ["bf", "sb", "dbf"]);
    }

    #[test]
    fn errors() {
        assert_eq!(
            spec().parse(toks("--nope 1")).unwrap_err(),
            ArgError::UnknownFlag("nope".into())
        );
        assert_eq!(
            spec().parse(toks("--seed")).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
        let bad = spec().parse(toks("--seed abc")).unwrap();
        assert!(matches!(
            bad.get::<u64>("seed", 0),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn defaults_apply() {
        let a = spec().parse(Vec::new()).unwrap();
        assert_eq!(a.get::<u64>("seed", 99).unwrap(), 99);
        assert_eq!(a.get_opt::<f64>("days").unwrap(), None);
    }
}
