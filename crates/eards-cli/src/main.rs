//! The `eards` binary: thin wrapper over [`eards_cli::dispatch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match eards_cli::dispatch(&argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
