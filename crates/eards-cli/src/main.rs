//! The `eards` binary: thin wrapper over [`eards_cli::dispatch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match eards_cli::dispatch(&argv) {
        Ok(output) => print!("{output}"),
        Err(eards_cli::CliError::Lint(report)) => {
            // New lint findings: the report IS the output; exit 1 (vs. 2
            // for invocation errors) so CI and scripts can tell them apart.
            print!("{report}");
            std::process::exit(1);
        }
        Err(eards_cli::CliError::Snapshot(msg)) => {
            // Corrupt/unreadable checkpoint: exit 3 (vs. 2 for invocation
            // errors) so a supervisor can discard the file and start over.
            eprintln!("error: {msg}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
