//! The Round Robin (RR) baseline of Table II: "assigns a task to each
//! available node, which implies a maximization of the amount of resources
//! to a task but also a sparse usage of the resources".
//!
//! A rotating cursor walks the powered-on hosts; each queued VM lands on
//! the next host that meets its hard requirements, preferring hosts that
//! are still strictly free before overcommitting. The result is the
//! sparsest packing of all policies — Table II's highest power draw.

use eards_model::{Action, Cluster, HostId, PersistError, Policy, Reader, ScheduleContext, Writer};

use crate::common::{ready_hosts, Planner};

/// The Round Robin placement policy.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy with the cursor at host 0.
    pub fn new() -> Self {
        RoundRobinPolicy { cursor: 0 }
    }

    /// Finds the next host after the cursor that passes `pred`.
    fn next_matching(&mut self, ready: &[HostId], pred: impl Fn(HostId) -> bool) -> Option<HostId> {
        let n = ready.len();
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            if pred(ready[idx]) {
                self.cursor = (idx + 1) % n;
                return Some(ready[idx]);
            }
        }
        None
    }
}

impl Policy for RoundRobinPolicy {
    fn name(&self) -> String {
        "RR".into()
    }

    fn schedule(&mut self, cluster: &Cluster, _ctx: &ScheduleContext) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut planner = Planner::new(cluster);
        let ready = ready_hosts(cluster);
        if ready.is_empty() {
            return actions;
        }
        for &vm in cluster.queue() {
            // First preference: the next host where the VM fits without
            // contention. Fallback: the next host where it fits at all.
            let host = self
                .next_matching(&ready, |h| planner.can_place(h, vm))
                .or_else(|| self.next_matching(&ready, |h| planner.can_place_overcommitted(h, vm)));
            if let Some(host) = host {
                planner.commit(host, vm);
                actions.push(Action::Create { vm, host });
            }
        }
        actions
    }

    // The rotation cursor is the policy's entire cross-round state.
    fn persist_state(&self, w: &mut Writer) {
        w.put_usize(self.cursor);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.cursor = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{
        Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason, VmId,
    };
    use eards_sim::{SimDuration, SimTime};

    fn ctx() -> ScheduleContext {
        ScheduleContext {
            now: SimTime::ZERO,
            reason: ScheduleReason::VmArrived,
        }
    }

    fn cluster(hosts: u32) -> Cluster {
        Cluster::new(
            (0..hosts)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn add_job(c: &mut Cluster, id: u64, cpu: u32) -> VmId {
        c.submit_job(Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ))
    }

    #[test]
    fn distributes_one_per_host_in_order() {
        let mut c = cluster(4);
        for i in 0..4 {
            add_job(&mut c, i, 100);
        }
        let mut p = RoundRobinPolicy::new();
        let actions = p.schedule(&c, &ctx());
        let hosts: Vec<u32> = actions
            .iter()
            .map(|a| match a {
                Action::Create { host, .. } => host.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cursor_persists_across_rounds() {
        let mut c = cluster(4);
        add_job(&mut c, 0, 100);
        let mut p = RoundRobinPolicy::new();
        let a1 = p.schedule(&c, &ctx());
        assert_eq!(
            a1,
            vec![Action::Create {
                vm: VmId(0),
                host: HostId(0)
            }]
        );
        // Next round starts at host 1 even though host 0 is still free in
        // this (unapplied) cluster view.
        let a2 = p.schedule(&c, &ctx());
        assert_eq!(
            a2,
            vec![Action::Create {
                vm: VmId(0),
                host: HostId(1)
            }]
        );
    }

    #[test]
    fn wraps_around_and_overcommits_when_full() {
        let mut c = cluster(2);
        for i in 0..6 {
            add_job(&mut c, i, 400);
        }
        let mut p = RoundRobinPolicy::new();
        let actions = p.schedule(&c, &ctx());
        assert_eq!(actions.len(), 6, "overcommit fallback places them all");
        let mut per_host = [0; 2];
        for a in &actions {
            if let Action::Create { host, .. } = a {
                per_host[host.raw() as usize] += 1;
            }
        }
        assert_eq!(per_host, [3, 3], "round robin stays balanced");
    }

    #[test]
    fn no_hosts_no_actions() {
        let mut c = cluster(1);
        add_job(&mut c, 0, 100);
        c.begin_power_off(HostId(0), SimTime::ZERO);
        assert!(RoundRobinPolicy::new().schedule(&c, &ctx()).is_empty());
    }
}
