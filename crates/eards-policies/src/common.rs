//! Shared machinery for scheduling policies.
//!
//! Within one scheduling round a policy places several queued VMs; each
//! tentative placement consumes capacity the next one must see. [`Planner`]
//! overlays those in-round reservations on the immutable [`Cluster`] view.

use std::collections::HashMap;

use eards_model::{Cluster, HostId, Resources, VmId};

/// A cluster view that accumulates tentative placements made during the
/// current scheduling round.
pub struct Planner<'a> {
    cluster: &'a Cluster,
    // lint:allow(D001): keyed get/entry accumulation only, never iterated
    planned: HashMap<HostId, Resources>,
    /// VMs this round already decided to move away from their host
    /// (their resources no longer count there for *strict* checks).
    // lint:allow(D001): keyed get/entry accumulation only, never iterated
    vacated: HashMap<HostId, Resources>,
}

impl<'a> Planner<'a> {
    /// Starts an empty plan over `cluster`.
    pub fn new(cluster: &'a Cluster) -> Self {
        Planner {
            cluster,
            planned: HashMap::new(),
            vacated: HashMap::new(),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Committed + planned − vacated resources on a host.
    pub fn effective_committed(&self, host: HostId) -> Resources {
        let mut r = self.cluster.committed(host);
        if let Some(&p) = self.planned.get(&host) {
            r = r.plus(p);
        }
        if let Some(&v) = self.vacated.get(&host) {
            // Saturating component-wise subtraction.
            r = Resources::new(r.cpu.saturating_sub(v.cpu), {
                let m = r.mem.mib().saturating_sub(v.mem.mib());
                eards_model::Mem(m)
            });
        }
        r
    }

    /// Occupation a host would have after also hosting `vm`, counting the
    /// plan so far.
    pub fn occupation_with(&self, host: HostId, vm: VmId) -> f64 {
        let spec_cap = self.cluster.host(host).spec.capacity();
        let mut used = self.effective_committed(host);
        let v = self.cluster.vm(vm);
        let already = v.host == Some(host);
        if !already {
            used = used.plus(v.requested);
        }
        used.occupation_in(spec_cap)
    }

    /// Strict feasibility including the plan (occupation ≤ 1).
    pub fn can_place(&self, host: HostId, vm: VmId) -> bool {
        self.can_place_overcommitted(host, vm) && self.occupation_with(host, vm) <= 1.0
    }

    /// Relaxed feasibility including the plan (memory only).
    pub fn can_place_overcommitted(&self, host: HostId, vm: VmId) -> bool {
        let h = self.cluster.host(host);
        if !h.power.is_ready() || !h.spec.satisfies(&self.cluster.vm(vm).job.requirements) {
            return false;
        }
        let used = self.effective_committed(host);
        used.mem + self.cluster.vm(vm).requested.mem <= h.spec.capacity().mem
    }

    /// Records a tentative placement of `vm` onto `host`.
    pub fn commit(&mut self, host: HostId, vm: VmId) {
        let r = self.cluster.vm(vm).requested;
        let e = self.planned.entry(host).or_insert(Resources::ZERO);
        *e = e.plus(r);
    }

    /// Records that `vm` will leave `from` (for migration planning).
    pub fn vacate(&mut self, from: HostId, vm: VmId) {
        let r = self.cluster.vm(vm).requested;
        let e = self.vacated.entry(from).or_insert(Resources::ZERO);
        *e = e.plus(r);
    }
}

/// Hosts currently able to accept work (powered on), in id order.
pub fn ready_hosts(cluster: &Cluster) -> Vec<HostId> {
    cluster
        .hosts()
        .iter()
        .filter(|h| h.power.is_ready())
        .map(|h| h.spec.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState};
    use eards_sim::{SimDuration, SimTime};

    fn setup() -> (Cluster, VmId, VmId) {
        let mut c = Cluster::new(
            vec![
                HostSpec::standard(HostId(0), HostClass::Medium),
                HostSpec::standard(HostId(1), HostClass::Medium),
            ],
            PowerState::On,
        );
        let a = c.submit_job(Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(300),
            Mem::gib(2),
            SimDuration::from_secs(100),
            1.5,
        ));
        let b = c.submit_job(Job::new(
            JobId(2),
            SimTime::ZERO,
            Cpu(200),
            Mem::gib(2),
            SimDuration::from_secs(100),
            1.5,
        ));
        (c, a, b)
    }

    #[test]
    fn planner_tracks_tentative_placements() {
        let (c, a, b) = setup();
        let mut p = Planner::new(&c);
        assert!(p.can_place(HostId(0), a));
        p.commit(HostId(0), a);
        // 300 planned + 200 = 500 > 400: strict fails, relaxed passes.
        assert!(!p.can_place(HostId(0), b));
        assert!(p.can_place_overcommitted(HostId(0), b));
        assert!(p.can_place(HostId(1), b));
        // The real cluster is untouched.
        assert!(c.can_place(HostId(0), b));
    }

    #[test]
    fn planner_memory_accumulates() {
        let mut c = Cluster::new(
            vec![HostSpec::standard(HostId(0), HostClass::Fast)],
            PowerState::On,
        );
        let ids: Vec<VmId> = (0..3)
            .map(|i| {
                c.submit_job(Job::new(
                    JobId(i),
                    SimTime::ZERO,
                    Cpu(100),
                    Mem::gib(7),
                    SimDuration::from_secs(10),
                    1.5,
                ))
            })
            .collect();
        let mut p = Planner::new(&c);
        assert!(p.can_place_overcommitted(HostId(0), ids[0]));
        p.commit(HostId(0), ids[0]);
        assert!(p.can_place_overcommitted(HostId(0), ids[1]));
        p.commit(HostId(0), ids[1]);
        // 7+7+7 = 21 GiB > 16 GiB.
        assert!(!p.can_place_overcommitted(HostId(0), ids[2]));
    }

    #[test]
    fn vacate_frees_capacity_for_planning() {
        let (mut c, a, b) = setup();
        let t0 = SimTime::ZERO;
        c.start_creation(a, HostId(0), t0, SimTime::from_secs(40));
        c.finish_creation(a, SimTime::from_secs(40));
        let mut p = Planner::new(&c);
        // Host 0 holds a (300). b (200) does not fit strictly...
        assert!(!p.can_place(HostId(0), b));
        // ...until the plan moves a away.
        p.vacate(HostId(0), a);
        assert!(p.can_place(HostId(0), b));
    }

    #[test]
    fn ready_hosts_excludes_off() {
        let (mut c, _, _) = setup();
        c.begin_power_off(HostId(1), SimTime::ZERO);
        assert_eq!(ready_hosts(&c), vec![HostId(0)]);
    }
}
