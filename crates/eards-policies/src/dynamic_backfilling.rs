//! The Dynamic Backfilling (DBF) baseline of Table IV: "applies
//! Backfilling and migrates VMs between nodes in order to provide a higher
//! consolidation level".
//!
//! Placement is identical to [`BackfillingPolicy`]; additionally, each
//! round tries to *empty* the least-occupied working hosts by migrating
//! their VMs into fuller hosts (strict fit only). A host is only worth
//! emptying if **all** of its VMs can be rehoused — otherwise the
//! migrations would spend overhead without freeing a node to switch off.
//! DBF is migration-happy (it ignores migration cost), which is exactly
//! the behaviour the paper contrasts the score-based policy against.

use eards_model::{
    Action, Cluster, HostId, Policy, ScheduleContext, ScheduleReason, VmId, VmState,
};

use crate::backfilling::best_fit;
use crate::common::{ready_hosts, Planner};

/// The Dynamic Backfilling policy (BF + consolidation migrations).
#[derive(Debug)]
pub struct DynamicBackfillingPolicy {
    /// Cap on migrations emitted per scheduling round (avoids storms).
    pub max_migrations_per_round: usize,
    /// Only hosts at or below this occupation are worth draining — moving
    /// VMs off a well-used host costs overhead without freeing a node in
    /// any reasonable time frame.
    pub drain_occupation_threshold: f64,
    /// Maximum hosts drained per round (1 keeps migration counts in the
    /// regime the paper's Table IV reports).
    pub max_drains_per_round: usize,
}

impl Default for DynamicBackfillingPolicy {
    fn default() -> Self {
        DynamicBackfillingPolicy {
            max_migrations_per_round: 6,
            drain_occupation_threshold: 0.5,
            max_drains_per_round: 2,
        }
    }
}

impl DynamicBackfillingPolicy {
    /// Creates the policy with the default migration cap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for DynamicBackfillingPolicy {
    fn name(&self) -> String {
        "DBF".into()
    }

    fn uses_migration(&self) -> bool {
        true
    }

    fn schedule(&mut self, cluster: &Cluster, ctx: &ScheduleContext) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut planner = Planner::new(cluster);
        let ready = ready_hosts(cluster);

        // Phase 1: place the queue exactly like BF.
        for &vm in cluster.queue() {
            if let Some(host) = best_fit(&planner, &ready, vm) {
                planner.commit(host, vm);
                actions.push(Action::Create { vm, host });
            }
        }

        // Phase 2: consolidation — only on periodic rounds (the same
        // cadence on which the score-based policy re-evaluates moves).
        if ctx.reason != ScheduleReason::Periodic {
            return actions;
        }
        // Consider working hosts from least to
        // most occupied; try to fully evacuate each.
        let mut working: Vec<HostId> = cluster
            .hosts()
            .iter()
            .filter(|h| h.is_working() && h.power.is_ready())
            .map(|h| h.spec.id)
            .collect();
        working.sort_by(|&a, &b| {
            cluster
                .occupation(a)
                .total_cmp(&cluster.occupation(b))
                .then(a.cmp(&b))
        });

        let mut migrations = 0usize;
        let mut drains = 0usize;
        // Hosts already involved in this round's migrations: an evacuated
        // host must not become a target (that would plan a pointless swap),
        // and a target must not later be evacuated.
        let mut touched: std::collections::HashSet<HostId> = std::collections::HashSet::new();
        'victims: for &victim in &working {
            if migrations >= self.max_migrations_per_round || drains >= self.max_drains_per_round {
                break;
            }
            if touched.contains(&victim) {
                continue;
            }
            if cluster.occupation(victim) > self.drain_occupation_threshold {
                continue;
            }
            let host = cluster.host(victim);
            // Skip hosts with in-flight operations — their VMs are pinned.
            if !host.ops.is_empty() || !host.incoming.is_empty() {
                continue;
            }
            let movable: Vec<VmId> = host
                .resident
                .iter()
                .copied()
                .filter(|&vm| cluster.vm(vm).state == VmState::Running)
                .collect();
            if movable.is_empty() || movable.len() != host.resident.len() {
                continue; // something unmovable lives here
            }
            if migrations + movable.len() > self.max_migrations_per_round {
                continue;
            }

            // Tentatively plan a new home for every VM; all-or-nothing.
            let candidates: Vec<HostId> = ready
                .iter()
                .copied()
                .filter(|&h| {
                    h != victim
                        && !touched.contains(&h)
                        && cluster.host(h).is_working()
                        // Conservative: real middleware serializes node
                        // operations, so don't pile onto a busy host.
                        && cluster.host(h).ops.is_empty()
                })
                .collect();
            let mut trial = Vec::new();
            for &vm in &movable {
                match best_fit(&planner, &candidates, vm) {
                    Some(to) => {
                        planner.commit(to, vm);
                        trial.push(Action::Migrate { vm, to });
                    }
                    None => {
                        // Cannot fully evacuate: abandon this victim. The
                        // partial plan stays committed in the planner,
                        // which only makes later checks more conservative.
                        continue 'victims;
                    }
                }
            }
            migrations += trial.len();
            drains += 1;
            touched.insert(victim);
            for a in &trial {
                if let Action::Migrate { to, .. } = a {
                    touched.insert(*to);
                }
            }
            actions.extend(trial);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason};
    use eards_sim::{SimDuration, SimTime};

    fn ctx() -> ScheduleContext {
        ScheduleContext {
            now: SimTime::from_secs(1000),
            reason: ScheduleReason::Periodic,
        }
    }

    fn cluster(hosts: u32) -> Cluster {
        Cluster::new(
            (0..hosts)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    /// Places a running VM of `cpu` on `host`.
    fn run_vm(c: &mut Cluster, id: u64, cpu: u32, host: HostId) -> VmId {
        let vm = c.submit_job(Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(6000),
            1.5,
        ));
        c.start_creation(vm, host, SimTime::ZERO, SimTime::from_secs(40));
        c.finish_creation(vm, SimTime::from_secs(40));
        vm
    }

    #[test]
    fn consolidates_the_emptiest_host() {
        let mut c = cluster(3);
        run_vm(&mut c, 0, 300, HostId(0));
        let lonely = run_vm(&mut c, 1, 100, HostId(1));
        let actions = DynamicBackfillingPolicy::new().schedule(&c, &ctx());
        // The lonely 100% VM should move onto host 0 (300+100 = 400).
        assert_eq!(
            actions,
            vec![Action::Migrate {
                vm: lonely,
                to: HostId(0)
            }]
        );
    }

    #[test]
    fn all_or_nothing_evacuation() {
        let mut c = cluster(2);
        // Host 0: 300%. Host 1: two VMs, 100% + 200%. Only the 100 fits on
        // host 0; evacuating host 1 entirely is impossible → no migrations.
        run_vm(&mut c, 0, 300, HostId(0));
        run_vm(&mut c, 1, 100, HostId(1));
        run_vm(&mut c, 2, 200, HostId(1));
        let actions = DynamicBackfillingPolicy::new().schedule(&c, &ctx());
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn never_migrates_into_an_empty_host() {
        let mut c = cluster(3);
        let _a = run_vm(&mut c, 0, 100, HostId(0));
        // Hosts 1 and 2 are empty. Moving the only VM to an empty host
        // gains nothing; it must stay.
        let actions = DynamicBackfillingPolicy::new().schedule(&c, &ctx());
        assert!(actions.is_empty());
    }

    #[test]
    fn respects_migration_cap() {
        let mut c = cluster(6);
        // Five 1-VM hosts that could merge into host 5 (almost empty big).
        for i in 0..5u64 {
            run_vm(&mut c, i, 100, HostId(i as u32));
        }
        let mut p = DynamicBackfillingPolicy {
            max_migrations_per_round: 2,
            max_drains_per_round: 5,
            ..DynamicBackfillingPolicy::default()
        };
        let actions = p.schedule(&c, &ctx());
        let migs = actions
            .iter()
            .filter(|a| matches!(a, Action::Migrate { .. }))
            .count();
        assert!(migs <= 2, "cap violated: {actions:?}");
    }

    #[test]
    fn still_places_queue_like_bf() {
        let mut c = cluster(2);
        run_vm(&mut c, 0, 200, HostId(0));
        let q = c.submit_job(Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(200),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ));
        let actions = DynamicBackfillingPolicy::new().schedule(&c, &ctx());
        assert!(actions.contains(&Action::Create {
            vm: q,
            host: HostId(0)
        }));
    }

    #[test]
    fn skips_hosts_with_inflight_ops() {
        let mut c = cluster(2);
        run_vm(&mut c, 0, 300, HostId(0));
        // Host 1 has a VM still creating: pinned.
        let vm = c.submit_job(Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(100),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ));
        c.start_creation(vm, HostId(1), SimTime::ZERO, SimTime::from_secs(40));
        let actions = DynamicBackfillingPolicy::new().schedule(&c, &ctx());
        assert!(actions.is_empty(), "{actions:?}");
    }
}
