//! # eards-policies — baseline scheduling policies
//!
//! The comparison policies of the paper's evaluation (§V, Tables II & IV):
//!
//! * [`RandomPolicy`] (RD) — uniform random placement, CPU-oblivious;
//! * [`RoundRobinPolicy`] (RR) — rotating placement, sparsest packing;
//! * [`BackfillingPolicy`] (BF) — best-fit consolidation, no migration,
//!   never overcommits;
//! * [`DynamicBackfillingPolicy`] (DBF) — BF plus cost-oblivious
//!   consolidation migrations.
//!
//! The paper's own contribution — the score-based scheduler — lives in
//! `eards-core` and implements the same [`eards_model::Policy`] trait.
//! [`Planner`] (in-round capacity overlay) is shared with it.

#![warn(missing_docs)]

mod backfilling;
mod common;
mod dynamic_backfilling;
mod random;
mod round_robin;

pub use backfilling::BackfillingPolicy;
pub use common::{ready_hosts, Planner};
pub use dynamic_backfilling::DynamicBackfillingPolicy;
pub use random::RandomPolicy;
pub use round_robin::RoundRobinPolicy;
