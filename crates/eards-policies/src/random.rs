//! The Random (RD) baseline of Table II: "assigns the tasks randomly".
//!
//! Each queued VM goes to a uniformly random powered-on host that meets
//! its hard requirements (hardware/software and memory). CPU is freely
//! overcommitted — the policy is oblivious to load, which is exactly why
//! Table II reports 33% satisfaction and 475% delay for it.

use eards_model::{Action, Cluster, PersistError, Policy, Reader, ScheduleContext, Writer};
use eards_sim::{Persist, SimRng};

use crate::common::{ready_hosts, Planner};

/// The Random placement policy.
pub struct RandomPolicy {
    rng: SimRng,
}

impl RandomPolicy {
    /// Creates the policy with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> String {
        "RD".into()
    }

    fn schedule(&mut self, cluster: &Cluster, _ctx: &ScheduleContext) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut planner = Planner::new(cluster);
        let ready = ready_hosts(cluster);
        if ready.is_empty() {
            return actions;
        }
        for &vm in cluster.queue() {
            // Sample a random host; fall back to a scan so a feasible host
            // is found whenever one exists.
            let start = self.rng.index(ready.len());
            let pick = (0..ready.len())
                .map(|k| ready[(start + k) % ready.len()])
                .find(|&h| planner.can_place_overcommitted(h, vm));
            if let Some(host) = pick {
                planner.commit(host, vm);
                actions.push(Action::Create { vm, host });
            }
        }
        actions
    }

    // The RNG position is the policy's entire cross-round state; without
    // it a resumed run would re-draw the sequence from the seed.
    fn persist_state(&self, w: &mut Writer) {
        self.rng.persist(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.rng = SimRng::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{
        Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason,
    };
    use eards_sim::{SimDuration, SimTime};

    fn ctx() -> ScheduleContext {
        ScheduleContext {
            now: SimTime::ZERO,
            reason: ScheduleReason::VmArrived,
        }
    }

    fn cluster(hosts: u32) -> Cluster {
        Cluster::new(
            (0..hosts)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn add_job(c: &mut Cluster, id: u64, cpu: u32) -> eards_model::VmId {
        c.submit_job(Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ))
    }

    #[test]
    fn places_every_queued_vm_somewhere() {
        let mut c = cluster(4);
        for i in 0..10 {
            add_job(&mut c, i, 100);
        }
        let mut p = RandomPolicy::new(1);
        let actions = p.schedule(&c, &ctx());
        assert_eq!(actions.len(), 10, "memory fits everywhere");
        for a in &actions {
            assert!(matches!(a, Action::Create { .. }));
        }
    }

    #[test]
    fn overcommits_cpu_happily() {
        let mut c = cluster(1);
        for i in 0..5 {
            add_job(&mut c, i, 400);
        }
        let mut p = RandomPolicy::new(2);
        // 5 × 400% onto one 400% node: random placement doesn't care.
        assert_eq!(p.schedule(&c, &ctx()).len(), 5);
    }

    #[test]
    fn spreads_across_hosts_statistically() {
        let mut c = cluster(10);
        for i in 0..200 {
            add_job(&mut c, i, 100);
        }
        let mut p = RandomPolicy::new(3);
        let actions = p.schedule(&c, &ctx());
        let mut per_host = [0usize; 10];
        for a in &actions {
            if let Action::Create { host, .. } = a {
                per_host[host.raw() as usize] += 1;
            }
        }
        // Each host should get a decent share (20 expected).
        for (i, &n) in per_host.iter().enumerate() {
            assert!((5..=45).contains(&n), "host {i} got {n}/200");
        }
    }

    #[test]
    fn no_ready_hosts_means_no_actions() {
        let mut c = cluster(1);
        add_job(&mut c, 1, 100);
        c.begin_power_off(HostId(0), SimTime::ZERO);
        let mut p = RandomPolicy::new(4);
        assert!(p.schedule(&c, &ctx()).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut c = cluster(5);
        for i in 0..20 {
            add_job(&mut c, i, 100);
        }
        let a1 = RandomPolicy::new(9).schedule(&c, &ctx());
        let a2 = RandomPolicy::new(9).schedule(&c, &ctx());
        assert_eq!(a1, a2);
    }
}
