//! The Backfilling (BF) baseline of Table II: "tries to fill as much as
//! possible the nodes".
//!
//! Best-fit consolidation without migration: each queued VM goes to the
//! *most occupied* powered-on host where it still fits strictly
//! (occupation ≤ 100%). If no host fits, the VM waits in the queue — BF
//! never overcommits, which is why it reaches 98% satisfaction at a
//! fraction of RD/RR's power in Table II.

use eards_model::{Action, Cluster, HostId, Policy, ScheduleContext, VmId};

use crate::common::{ready_hosts, Planner};

/// The Backfilling placement policy.
#[derive(Debug, Default)]
pub struct BackfillingPolicy;

impl BackfillingPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        BackfillingPolicy
    }
}

/// Picks the fullest strictly-feasible host for `vm`, if any.
/// Exposed for reuse by [`crate::DynamicBackfillingPolicy`].
pub(crate) fn best_fit(planner: &Planner<'_>, ready: &[HostId], vm: VmId) -> Option<HostId> {
    let mut best: Option<(f64, HostId)> = None;
    for &h in ready {
        if !planner.can_place(h, vm) {
            continue;
        }
        let occ = planner.occupation_with(h, vm);
        // Highest post-placement occupation wins; ties break to the lowest
        // host id for determinism.
        let better = match best {
            None => true,
            Some((bo, bh)) => occ > bo + 1e-12 || (occ > bo - 1e-12 && h < bh),
        };
        if better {
            best = Some((occ, h));
        }
    }
    best.map(|(_, h)| h)
}

impl Policy for BackfillingPolicy {
    fn name(&self) -> String {
        "BF".into()
    }

    fn schedule(&mut self, cluster: &Cluster, _ctx: &ScheduleContext) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut planner = Planner::new(cluster);
        let ready = ready_hosts(cluster);
        for &vm in cluster.queue() {
            if let Some(host) = best_fit(&planner, &ready, vm) {
                planner.commit(host, vm);
                actions.push(Action::Create { vm, host });
            }
            // else: wait in the queue — never overcommit.
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eards_model::{Cpu, HostClass, HostSpec, Job, JobId, Mem, PowerState, ScheduleReason};
    use eards_sim::{SimDuration, SimTime};

    fn ctx() -> ScheduleContext {
        ScheduleContext {
            now: SimTime::ZERO,
            reason: ScheduleReason::VmArrived,
        }
    }

    fn cluster(hosts: u32) -> Cluster {
        Cluster::new(
            (0..hosts)
                .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
                .collect(),
            PowerState::On,
        )
    }

    fn add_job(c: &mut Cluster, id: u64, cpu: u32) -> VmId {
        c.submit_job(Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(600),
            1.5,
        ))
    }

    #[test]
    fn packs_onto_one_host_until_full() {
        let mut c = cluster(4);
        for i in 0..4 {
            add_job(&mut c, i, 100);
        }
        let actions = BackfillingPolicy::new().schedule(&c, &ctx());
        assert_eq!(actions.len(), 4);
        for a in &actions {
            assert_eq!(
                *a,
                Action::Create {
                    vm: match a {
                        Action::Create { vm, .. } => *vm,
                        _ => unreachable!(),
                    },
                    host: HostId(0)
                }
            );
        }
    }

    #[test]
    fn spills_to_next_host_when_full() {
        let mut c = cluster(2);
        for i in 0..5 {
            add_job(&mut c, i, 200);
        }
        let actions = BackfillingPolicy::new().schedule(&c, &ctx());
        // 2 fit on host 0, 2 on host 1, the fifth must wait.
        assert_eq!(actions.len(), 4);
        let mut per_host = [0; 2];
        for a in &actions {
            if let Action::Create { host, .. } = a {
                per_host[host.raw() as usize] += 1;
            }
        }
        assert_eq!(per_host, [2, 2]);
    }

    #[test]
    fn prefers_the_fullest_feasible_host() {
        let mut c = cluster(2);
        // Pre-load host 1 with a 300% VM.
        let pre = add_job(&mut c, 0, 300);
        c.start_creation(pre, HostId(1), SimTime::ZERO, SimTime::from_secs(40));
        // A 100% job should join host 1 (fills it exactly), not empty host 0.
        let vm = add_job(&mut c, 1, 100);
        let actions = BackfillingPolicy::new().schedule(&c, &ctx());
        assert_eq!(
            actions,
            vec![Action::Create {
                vm,
                host: HostId(1)
            }]
        );
    }

    #[test]
    fn never_overcommits() {
        let mut c = cluster(1);
        for i in 0..3 {
            add_job(&mut c, i, 300);
        }
        let actions = BackfillingPolicy::new().schedule(&c, &ctx());
        assert_eq!(actions.len(), 1, "only one 300% VM fits a 400% node");
    }

    #[test]
    fn skips_infeasible_but_places_rest() {
        let mut c = cluster(1);
        add_job(&mut c, 0, 400); // fills the node
        add_job(&mut c, 1, 100); // must wait
        add_job(&mut c, 2, 0); // zero-cpu job still placeable
        let actions = BackfillingPolicy::new().schedule(&c, &ctx());
        let vms: Vec<u64> = actions
            .iter()
            .map(|a| match a {
                Action::Create { vm, .. } => vm.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vms, vec![0, 2]);
    }
}
