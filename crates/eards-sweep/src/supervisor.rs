//! The supervisor: spawns worker processes over the shard grid and
//! keeps them honest.
//!
//! Each shard runs in a child process that speaks the [`crate::protocol`]
//! line protocol on stdout. The supervisor tracks a last-seen wall clock
//! per worker (every stdout line is a heartbeat), SIGKILLs workers that
//! go quiet past the shard timeout, retries failed or killed shards with
//! exponential backoff, and passes `--resume-ckpt` when a checkpoint
//! from an earlier attempt survives. A shard that exhausts its retry
//! budget is **quarantined** — it still appears in the merged report,
//! marked as such, and marks the report partial. No shard is ever
//! silently dropped.
//!
//! Wall-clock use is deliberate and confined to this crate: timeouts and
//! backoff are supervision concerns, not simulation concerns, and the
//! merged report carries no timing (see `merge`) so determinism is
//! unaffected.

use std::collections::VecDeque;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::grid::ShardSpec;
use crate::merge::{MergeEntry, ShardStatus};
use crate::protocol::{parse_line, WorkerMsg};
use crate::result::{from_result_file, render_quarantined, ShardRendered};

// Supervision is the one place this workspace legitimately reads the
// wall clock; clippy.toml bans it everywhere by default.
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    Instant::now()
}

/// How to launch one worker. The supervisor appends the per-shard args
/// from [`shard_args`] after `base_args`.
#[derive(Debug, Clone)]
pub struct WorkerPlan {
    /// Executable to spawn (normally the `eards` binary itself).
    pub program: PathBuf,
    /// Leading arguments, e.g. `["sweep-worker", "--hosts", "20", …]`.
    pub base_args: Vec<String>,
}

/// Per-shard arguments appended to [`WorkerPlan::base_args`], in a fixed
/// order the `sweep-worker` subcommand understands.
pub fn shard_args(spec: &ShardSpec, workdir: &Path, resume_ckpt: Option<&Path>) -> Vec<String> {
    let mut args = vec![
        "--shard-key".to_string(),
        spec.key(),
        "--shard-seed".to_string(),
        spec.seed.to_string(),
        "--shard-policy".to_string(),
        spec.policy.clone(),
        "--shard-chaos".to_string(),
        spec.chaos.to_string(),
        "--workdir".to_string(),
        workdir.display().to_string(),
    ];
    if let Some(ckpt) = resume_ckpt {
        args.push("--resume-ckpt".to_string());
        args.push(ckpt.display().to_string());
    }
    args
}

/// Supervision policy for one farm run.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Maximum concurrently running workers (clamped to ≥ 1).
    pub jobs: usize,
    /// A worker printing nothing for this long is declared hung and
    /// SIGKILLed.
    pub shard_timeout: Duration,
    /// Attempts per shard before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)`, capped.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
    /// Scratch directory; each shard gets `workdir/<key>/`.
    pub workdir: PathBuf,
    /// Fault-injection hook for tests/CI: shard keys whose **first**
    /// attempt is SIGKILLed by the supervisor itself…
    pub inject_kill: Vec<String>,
    /// …once the worker reports at least this much simulated progress
    /// (so a checkpoint exists to resume from).
    pub inject_kill_after_ms: u64,
}

impl FarmConfig {
    /// A config with everything but the workdir defaulted.
    pub fn new(workdir: PathBuf) -> Self {
        FarmConfig {
            jobs: 1,
            shard_timeout: Duration::from_secs(300),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            workdir,
            inject_kill: Vec::new(),
            inject_kill_after_ms: 0,
        }
    }
}

/// Terminal record of one shard after supervision.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The grid cell.
    pub spec: ShardSpec,
    /// `Ok` or `Quarantined`.
    pub status: ShardStatus,
    /// Attempts consumed (≥ 1).
    pub attempts: u32,
    /// True if any attempt resumed from a checkpoint.
    pub resumed: bool,
    /// True if the supervisor's fault-injection hook killed an attempt.
    pub injected_kill: bool,
    /// One entry per failed attempt, in order.
    pub errors: Vec<String>,
    /// Rendered result (worker output, or a quarantine marker).
    pub rendered: ShardRendered,
}

/// Converts outcomes into merge entries (outcomes already carry their
/// rendered rows, so this is a reshape).
pub fn to_merge_entries(outcomes: &[ShardOutcome]) -> Vec<MergeEntry> {
    outcomes
        .iter()
        .map(|o| MergeEntry {
            spec: o.spec.clone(),
            status: o.status,
            rendered: o.rendered.clone(),
        })
        .collect()
}

/// Live view of one worker, updated by its stdout-reader thread.
struct View {
    last_seen: Instant,
    progress_ms: u64,
    result_path: Option<String>,
    warns: Vec<String>,
}

struct Attempt {
    spec: ShardSpec,
    /// Attempts already failed (0 on the first try).
    failures: u32,
    not_before: Instant,
    errors: Vec<String>,
    resumed: bool,
    injected_kill: bool,
}

struct Running {
    attempt: Attempt,
    child: Child,
    view: Arc<Mutex<View>>,
    reader: JoinHandle<()>,
    started: Instant,
}

fn shard_dir(cfg: &FarmConfig, spec: &ShardSpec) -> PathBuf {
    cfg.workdir.join(spec.key())
}

/// Path the worker is expected to write its checkpoint to (the
/// supervisor only probes for existence; the worker owns the contents).
pub fn ckpt_path(workdir: &Path, spec: &ShardSpec) -> PathBuf {
    workdir.join(spec.key()).join("ckpt.bin")
}

fn spawn_worker(
    plan: &WorkerPlan,
    cfg: &FarmConfig,
    attempt: Attempt,
) -> Result<Running, (Attempt, String)> {
    let dir = shard_dir(cfg, &attempt.spec);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return Err((attempt, format!("create {}: {e}", dir.display())));
    }
    let ckpt = ckpt_path(&cfg.workdir, &attempt.spec);
    let resume = ckpt.is_file().then_some(ckpt.as_path());
    let stderr_path = dir.join(format!("attempt_{}.stderr", attempt.failures + 1));
    let stderr = match std::fs::File::create(&stderr_path) {
        Ok(f) => f,
        Err(e) => return Err((attempt, format!("create {}: {e}", stderr_path.display()))),
    };
    let mut cmd = Command::new(&plan.program);
    cmd.args(&plan.base_args)
        .args(shard_args(&attempt.spec, &cfg.workdir, resume))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::from(stderr));
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return Err((attempt, format!("spawn {}: {e}", plan.program.display()))),
    };
    let stdout = child.stdout.take().expect("stdout was piped");
    let view = Arc::new(Mutex::new(View {
        last_seen: wall_now(),
        progress_ms: 0,
        result_path: None,
        warns: Vec::new(),
    }));
    let view_w = Arc::clone(&view);
    let reader = std::thread::spawn(move || {
        let buf = std::io::BufReader::new(stdout);
        for line in buf.lines() {
            let Ok(line) = line else { break };
            let mut v = view_w.lock().unwrap();
            v.last_seen = wall_now();
            match parse_line(&line) {
                Some(WorkerMsg::Progress { sim_ms }) => v.progress_ms = sim_ms,
                Some(WorkerMsg::Result { path }) => v.result_path = Some(path),
                Some(WorkerMsg::Warn { msg }) => v.warns.push(msg),
                Some(WorkerMsg::Start { .. }) | Some(WorkerMsg::Checkpoint { .. }) | None => {}
            }
        }
    });
    let resumed = attempt.resumed || resume.is_some();
    Ok(Running {
        attempt: Attempt { resumed, ..attempt },
        child,
        view,
        reader,
        started: wall_now(),
    })
}

/// Collects a finished child into either a success or a failed attempt.
fn reap(mut run: Running, exit: std::process::ExitStatus) -> Result<ShardOutcome, Attempt> {
    let _ = run.reader.join();
    let view = run.view.lock().unwrap();
    let warns: Vec<String> = view.warns.clone();
    let result = if exit.success() {
        match &view.result_path {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("read result {path}: {e}"))
                .and_then(|text| from_result_file(&text)),
            None => Err("worker exited 0 without a result line".to_string()),
        }
    } else {
        Err(format!("worker exited with {exit}"))
    };
    drop(view);
    match result {
        Ok(rendered) => Ok(ShardOutcome {
            spec: run.attempt.spec,
            status: ShardStatus::Ok,
            attempts: run.attempt.failures + 1,
            resumed: run.attempt.resumed,
            injected_kill: run.attempt.injected_kill,
            errors: run.attempt.errors,
            rendered,
        }),
        Err(mut e) => {
            if !warns.is_empty() {
                e = format!("{e} (warns: {})", warns.join("; "));
            }
            run.attempt.errors.push(e);
            run.attempt.failures += 1;
            Err(run.attempt)
        }
    }
}

fn backoff(cfg: &FarmConfig, failures: u32) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    cfg.backoff_base
        .saturating_mul(1u32 << exp)
        .min(cfg.backoff_cap)
}

/// Runs the farm to completion. Returns one outcome per shard, in grid
/// order. `log` receives human-readable supervision events (retries,
/// kills, quarantines); pass a sink to silence them.
pub fn run_farm(
    shards: Vec<ShardSpec>,
    plan: &WorkerPlan,
    cfg: &FarmConfig,
    log: &mut dyn FnMut(&str),
) -> Result<Vec<ShardOutcome>, String> {
    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| format!("create {}: {e}", cfg.workdir.display()))?;
    let jobs = cfg.jobs.max(1);
    let max_attempts = cfg.max_attempts.max(1);
    let total = shards.len();
    let mut queue: VecDeque<Attempt> = shards
        .into_iter()
        .map(|spec| Attempt {
            spec,
            failures: 0,
            not_before: wall_now(),
            errors: Vec::new(),
            resumed: false,
            injected_kill: false,
        })
        .collect();
    let mut running: Vec<Running> = Vec::new();
    let mut done: Vec<ShardOutcome> = Vec::new();

    // One attempt failed (exit/kill/spawn error); retry or quarantine.
    let requeue = |mut attempt: Attempt,
                   queue: &mut VecDeque<Attempt>,
                   done: &mut Vec<ShardOutcome>,
                   log: &mut dyn FnMut(&str)| {
        let key = attempt.spec.key();
        let last = attempt.errors.last().cloned().unwrap_or_default();
        if attempt.failures >= max_attempts {
            log(&format!(
                "shard {key}: quarantined after {} attempts ({last})",
                attempt.failures
            ));
            done.push(ShardOutcome {
                rendered: render_quarantined(&attempt.spec, attempt.failures, &last),
                spec: attempt.spec,
                status: ShardStatus::Quarantined,
                attempts: attempt.failures,
                resumed: attempt.resumed,
                injected_kill: attempt.injected_kill,
                errors: attempt.errors,
            });
        } else {
            let delay = backoff(cfg, attempt.failures);
            log(&format!(
                "shard {key}: attempt {} failed ({last}); retrying in {delay:?}",
                attempt.failures
            ));
            attempt.not_before = wall_now() + delay;
            queue.push_back(attempt);
        }
    };

    while done.len() < total {
        // Fill free slots with runnable attempts (respecting backoff).
        while running.len() < jobs {
            let now = wall_now();
            let Some(pos) = queue.iter().position(|a| a.not_before <= now) else {
                break;
            };
            let attempt = queue.remove(pos).expect("position was valid");
            match spawn_worker(plan, cfg, attempt) {
                Ok(run) => running.push(run),
                Err((mut attempt, e)) => {
                    attempt.errors.push(e);
                    attempt.failures += 1;
                    requeue(attempt, &mut queue, &mut done, log);
                }
            }
        }

        // Poll running workers.
        let mut idx = 0;
        while idx < running.len() {
            let run = &mut running[idx];
            let key = run.attempt.spec.key();

            // Fault-injection hook: SIGKILL the first attempt of the
            // targeted shards once they have made enough progress to
            // have checkpointed.
            if run.attempt.failures == 0
                && !run.attempt.injected_kill
                && cfg.inject_kill.contains(&key)
                && run.view.lock().unwrap().progress_ms >= cfg.inject_kill_after_ms
            {
                run.attempt.injected_kill = true;
                log(&format!("shard {key}: injecting SIGKILL (test hook)"));
                let _ = run.child.kill();
            }

            // Heartbeat: any stdout line refreshes last_seen; silence
            // past the timeout means the worker is hung.
            let quiet = {
                let v = run.view.lock().unwrap();
                v.last_seen.max(run.started).elapsed()
            };
            if quiet > cfg.shard_timeout {
                log(&format!(
                    "shard {key}: no heartbeat for {quiet:?} (timeout {:?}); killing",
                    cfg.shard_timeout
                ));
                let _ = run.child.kill();
                if let Err(e) = run.child.wait() {
                    return Err(format!("wait on hung worker {key}: {e}"));
                }
                let mut run = running.swap_remove(idx);
                run.attempt
                    .errors
                    .push(format!("heartbeat timeout after {quiet:?}"));
                run.attempt.failures += 1;
                let _ = run.reader.join();
                requeue(run.attempt, &mut queue, &mut done, log);
                continue;
            }

            match run.child.try_wait() {
                Ok(Some(exit)) => {
                    let run = running.swap_remove(idx);
                    match reap(run, exit) {
                        Ok(outcome) => done.push(outcome),
                        Err(attempt) => requeue(attempt, &mut queue, &mut done, log),
                    }
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(format!("wait on worker {key}: {e}")),
            }
            idx += 1;
        }

        if done.len() < total {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    done.sort_by_key(|o| o.spec.index);
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use crate::merge::merge;

    /// Builds a plan that runs a shell script as the worker. The script
    /// sees the per-shard args as `$1..`: `--shard-key KEY … --workdir
    /// DIR [--resume-ckpt PATH]`, so `KEY=$2` and `DIR=${10}`.
    fn sh_plan(script: &str) -> WorkerPlan {
        WorkerPlan {
            program: PathBuf::from("/bin/sh"),
            base_args: vec!["-c".into(), script.into(), "worker".into()],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eards-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn one_shard_grid() -> Vec<ShardSpec> {
        SweepGrid {
            seeds: vec![7],
            policies: vec!["sb".into()],
            chaos: vec![0.0],
        }
        .shards()
    }

    const OK_BODY: &str = r#"
KEY=$2; DIR=${10}
mkdir -p "$DIR/$KEY"
echo "SWEEP start $KEY"
printf '%s\n%s\n' "$KEY,7,sb,0,ok,1,2,3,4,5,6,7,8,9" "{\"shard\":\"$KEY\"}" > "$DIR/$KEY/result.txt"
echo "SWEEP result $DIR/$KEY/result.txt"
"#;

    fn quiet_cfg(workdir: PathBuf) -> FarmConfig {
        let mut cfg = FarmConfig::new(workdir);
        cfg.shard_timeout = Duration::from_secs(30);
        cfg.backoff_base = Duration::from_millis(5);
        cfg
    }

    #[test]
    fn healthy_workers_complete_in_grid_order() {
        let dir = tmpdir("ok");
        let shards = SweepGrid {
            seeds: vec![1, 2, 3],
            policies: vec!["sb".into()],
            chaos: vec![0.0],
        }
        .shards();
        let mut cfg = quiet_cfg(dir);
        cfg.jobs = 3;
        let outcomes = run_farm(shards, &sh_plan(OK_BODY), &cfg, &mut |_| {}).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.spec.index, i);
            assert_eq!(o.status, ShardStatus::Ok);
            assert_eq!(o.attempts, 1);
            assert!(!o.resumed);
        }
        let merged = merge(to_merge_entries(&outcomes), outcomes.len()).unwrap();
        assert!(!merged.partial);
    }

    #[test]
    fn crash_is_retried_with_resume_from_checkpoint() {
        let dir = tmpdir("crash");
        // First attempt writes a checkpoint and dies; the retry must be
        // handed --resume-ckpt (arg 11) and then succeeds.
        let body = r#"
KEY=$2; DIR=${10}; RESUME=${11:-none}
mkdir -p "$DIR/$KEY"
echo "SWEEP start $KEY"
if [ ! -f "$DIR/$KEY/ckpt.bin" ]; then
  echo ckpt > "$DIR/$KEY/ckpt.bin"
  echo "SWEEP ckpt $DIR/$KEY/ckpt.bin"
  exit 3
fi
[ "$RESUME" = "--resume-ckpt" ] || { echo "no resume flag" >&2; exit 4; }
printf '%s\n%s\n' "$KEY,7,sb,0,ok,1,2,3,4,5,6,7,8,9" "{\"shard\":\"$KEY\"}" > "$DIR/$KEY/result.txt"
echo "SWEEP result $DIR/$KEY/result.txt"
"#;
        let mut events = Vec::new();
        let outcomes = run_farm(
            one_shard_grid(),
            &sh_plan(body),
            &quiet_cfg(dir),
            &mut |e| events.push(e.to_string()),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert_eq!(o.status, ShardStatus::Ok);
        assert_eq!(o.attempts, 2);
        assert!(o.resumed, "retry should resume from the checkpoint");
        assert_eq!(o.errors.len(), 1);
        assert!(events.iter().any(|e| e.contains("retrying")), "{events:?}");
    }

    #[test]
    fn persistent_failure_is_quarantined_not_dropped() {
        let dir = tmpdir("quarantine");
        let mut cfg = quiet_cfg(dir);
        cfg.max_attempts = 2;
        let outcomes = run_farm(
            one_shard_grid(),
            &sh_plan("echo \"SWEEP start $2\"; exit 9"),
            &cfg,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].status, ShardStatus::Quarantined);
        assert_eq!(outcomes[0].attempts, 2);
        let merged = merge(to_merge_entries(&outcomes), outcomes.len()).unwrap();
        assert!(merged.partial);
        assert!(merged.csv.contains(",quarantined,"));
    }

    #[test]
    fn hung_worker_is_killed_on_heartbeat_timeout() {
        let dir = tmpdir("hang");
        let mut cfg = quiet_cfg(dir);
        cfg.shard_timeout = Duration::from_millis(300);
        cfg.max_attempts = 1;
        // `exec` replaces the shell so the SIGKILL lands on the sleeper.
        let outcomes = run_farm(
            one_shard_grid(),
            &sh_plan("echo \"SWEEP start $2\"; exec sleep 60"),
            &cfg,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(outcomes[0].status, ShardStatus::Quarantined);
        assert!(outcomes[0].errors[0].contains("heartbeat timeout"));
    }

    #[test]
    fn injected_kill_forces_a_retry() {
        let dir = tmpdir("inject");
        let shards = one_shard_grid();
        let mut cfg = quiet_cfg(dir);
        cfg.inject_kill = vec![shards[0].key()];
        cfg.inject_kill_after_ms = 1000;
        // First attempt reports progress then lingers so the supervisor
        // can kill it; the retry (ckpt present) completes immediately.
        let body = r#"
KEY=$2; DIR=${10}
mkdir -p "$DIR/$KEY"
echo "SWEEP start $KEY"
if [ ! -f "$DIR/$KEY/ckpt.bin" ]; then
  echo ckpt > "$DIR/$KEY/ckpt.bin"
  echo "SWEEP ckpt $DIR/$KEY/ckpt.bin"
  echo "SWEEP progress 3600000"
  exec sleep 60
fi
printf '%s\n%s\n' "$KEY,7,sb,0,ok,1,2,3,4,5,6,7,8,9" "{\"shard\":\"$KEY\"}" > "$DIR/$KEY/result.txt"
echo "SWEEP result $DIR/$KEY/result.txt"
"#;
        let outcomes = run_farm(shards, &sh_plan(body), &cfg, &mut |_| {}).unwrap();
        let o = &outcomes[0];
        assert_eq!(o.status, ShardStatus::Ok);
        assert!(o.injected_kill);
        assert_eq!(o.attempts, 2);
        assert!(o.resumed);
    }

    #[test]
    fn unspawnable_program_quarantines_every_shard() {
        let dir = tmpdir("nospawn");
        let plan = WorkerPlan {
            program: PathBuf::from("/nonexistent/eards-worker"),
            base_args: vec![],
        };
        let mut cfg = quiet_cfg(dir);
        cfg.max_attempts = 2;
        let outcomes = run_farm(one_shard_grid(), &plan, &cfg, &mut |_| {}).unwrap();
        assert_eq!(outcomes[0].status, ShardStatus::Quarantined);
        assert_eq!(outcomes[0].attempts, 2);
        assert!(outcomes[0].errors[0].contains("spawn"));
    }
}
