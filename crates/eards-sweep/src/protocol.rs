//! The worker → supervisor line protocol.
//!
//! A worker process reports over its **stdout**, one message per line,
//! each prefixed `SWEEP ` so interleaved diagnostic prints can never be
//! mistaken for protocol traffic. Every line doubles as a heartbeat: the
//! supervisor keeps a last-seen wall clock per worker and declares a
//! worker hung when no line (of any kind) arrives within the shard
//! timeout.
//!
//! ```text
//! SWEEP start <shard-key>
//! SWEEP progress <sim-ms>
//! SWEEP ckpt <path>
//! SWEEP warn <free text>
//! SWEEP result <path>
//! ```
//!
//! `result` is terminal: the worker writes its result file (atomically),
//! prints the line, and exits 0. A worker that exits without a `result`
//! line — crash, SIGKILL, nonzero exit — failed its attempt.

/// One parsed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// The worker came up and begins (or resumes) its shard.
    Start {
        /// Shard key echoed back by the worker.
        key: String,
    },
    /// Simulation progress heartbeat (simulated milliseconds).
    Progress {
        /// Current simulation clock, in milliseconds.
        sim_ms: u64,
    },
    /// A checkpoint was written (atomically) to `path`.
    Checkpoint {
        /// Path of the checkpoint file.
        path: String,
    },
    /// A non-fatal anomaly (e.g. a corrupt resume checkpoint that forced
    /// a fresh start).
    Warn {
        /// Human-readable description.
        msg: String,
    },
    /// The shard result file was written to `path`; the worker exits 0.
    Result {
        /// Path of the result file.
        path: String,
    },
}

/// Prefix opening every protocol line.
pub const PREFIX: &str = "SWEEP ";

/// Encodes a message as one protocol line (no trailing newline).
pub fn encode(msg: &WorkerMsg) -> String {
    match msg {
        WorkerMsg::Start { key } => format!("{PREFIX}start {key}"),
        WorkerMsg::Progress { sim_ms } => format!("{PREFIX}progress {sim_ms}"),
        WorkerMsg::Checkpoint { path } => format!("{PREFIX}ckpt {path}"),
        WorkerMsg::Warn { msg } => format!("{PREFIX}warn {msg}"),
        WorkerMsg::Result { path } => format!("{PREFIX}result {path}"),
    }
}

/// Parses one line. Returns `None` for non-protocol lines (which still
/// count as heartbeats) and for malformed protocol lines (a truncated
/// write from a dying worker must not wedge the supervisor).
pub fn parse_line(line: &str) -> Option<WorkerMsg> {
    let rest = line.strip_prefix(PREFIX)?;
    let (verb, arg) = match rest.split_once(' ') {
        Some((v, a)) => (v, a),
        None => (rest, ""),
    };
    match verb {
        "start" if !arg.is_empty() => Some(WorkerMsg::Start { key: arg.into() }),
        "progress" => arg
            .parse()
            .ok()
            .map(|sim_ms| WorkerMsg::Progress { sim_ms }),
        "ckpt" if !arg.is_empty() => Some(WorkerMsg::Checkpoint { path: arg.into() }),
        "warn" => Some(WorkerMsg::Warn { msg: arg.into() }),
        "result" if !arg.is_empty() => Some(WorkerMsg::Result { path: arg.into() }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let msgs = [
            WorkerMsg::Start {
                key: "s7-sb-x1".into(),
            },
            WorkerMsg::Progress { sim_ms: 3_600_000 },
            WorkerMsg::Checkpoint {
                path: "/tmp/x/ckpt.bin".into(),
            },
            WorkerMsg::Warn {
                msg: "corrupt checkpoint; starting fresh".into(),
            },
            WorkerMsg::Result {
                path: "/tmp/x/result.txt".into(),
            },
        ];
        for m in msgs {
            assert_eq!(parse_line(&encode(&m)), Some(m));
        }
    }

    #[test]
    fn garbage_and_partial_lines_are_ignored() {
        assert_eq!(parse_line("hello world"), None);
        assert_eq!(parse_line("SWEEP"), None);
        assert_eq!(parse_line("SWEEP progress"), None);
        assert_eq!(parse_line("SWEEP progress abc"), None);
        assert_eq!(parse_line("SWEEP result"), None);
        assert_eq!(parse_line("SWEEP frobnicate 3"), None);
        // A truncated prefix is a plain non-protocol line.
        assert_eq!(parse_line("SWE"), None);
    }
}
