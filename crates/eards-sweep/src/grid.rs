//! The shard grid: seed × policy × chaos enumeration with stable keys.
//!
//! A sweep is the cartesian product of three what-if axes. Enumeration
//! order is the **merge order**: seed-major, then policy, then chaos
//! intensity, exactly as the axes were given. The supervisor may finish
//! shards in any order (or retry them), but the merged report is always
//! assembled in enumeration order, which is what makes a parallel sweep
//! byte-identical to a serial one.

use std::fmt;

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Position in enumeration (= merge) order.
    pub index: usize,
    /// Simulation seed (`RunConfig::seed`: operation jitter, failures).
    pub seed: u64,
    /// Policy name, as accepted by the CLI (`sb`, `bf`, …).
    pub policy: String,
    /// Chaos intensity (0 = no fault plan; see `FaultPlan::chaos`).
    pub chaos: f64,
}

impl ShardSpec {
    /// Stable, filesystem-safe shard key: `s<seed>-<policy>-x<chaos>`.
    /// The chaos component uses Rust's shortest-round-trip `f64` display,
    /// so the same grid always produces the same keys.
    pub fn key(&self) -> String {
        format!("s{}-{}-x{}", self.seed, self.policy, self.chaos)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// The three axes of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Simulation seeds.
    pub seeds: Vec<u64>,
    /// Policy names.
    pub policies: Vec<String>,
    /// Chaos intensities.
    pub chaos: Vec<f64>,
}

impl SweepGrid {
    /// Number of shards (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.seeds.len() * self.policies.len() * self.chaos.len()
    }

    /// True if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every shard in merge order (seed-major, then policy,
    /// then chaos).
    pub fn shards(&self) -> Vec<ShardSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &seed in &self.seeds {
            for policy in &self.policies {
                for &chaos in &self.chaos {
                    out.push(ShardSpec {
                        index: out.len(),
                        seed,
                        policy: policy.clone(),
                        chaos,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid {
            seeds: vec![7, 8],
            policies: vec!["sb".into(), "bf".into()],
            chaos: vec![0.0, 1.5],
        }
    }

    #[test]
    fn enumeration_is_seed_major_and_indexed() {
        let shards = grid().shards();
        assert_eq!(shards.len(), 8);
        assert_eq!(shards[0].key(), "s7-sb-x0");
        assert_eq!(shards[1].key(), "s7-sb-x1.5");
        assert_eq!(shards[2].key(), "s7-bf-x0");
        assert_eq!(shards[4].key(), "s8-sb-x0");
        assert_eq!(shards[7].key(), "s8-bf-x1.5");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let a: Vec<String> = grid().shards().iter().map(ShardSpec::key).collect();
        let b: Vec<String> = grid().shards().iter().map(ShardSpec::key).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let mut g = grid();
        g.chaos.clear();
        assert!(g.is_empty());
        assert!(g.shards().is_empty());
    }
}
