//! Deterministic per-shard result rendering.
//!
//! A shard result is rendered **once**, by the process that ran the
//! simulation (worker or serial in-process run), into two strings: a CSV
//! row and a JSON object line. The merge step concatenates these strings
//! verbatim — it never re-parses or re-formats a number — so a parallel
//! sweep's merged report is byte-identical to a serial run's by
//! construction, regardless of completion order, retries or resumes.
//!
//! Floats use Rust's shortest-round-trip `Display`, which is
//! deterministic across runs and platforms for identical bit patterns
//! (and identical bit patterns are exactly what the determinism suite
//! pins).

use eards_metrics::RunReport;

use crate::grid::ShardSpec;

/// Header of the merged CSV report. The leading columns identify the
/// shard; `status` is `ok` or `quarantined`; quarantined rows leave the
/// metric columns empty rather than inventing numbers.
pub const CSV_HEADER: &str = "shard,seed,policy,chaos,status,energy_kwh,satisfaction_pct,\
delay_pct,migrations,creations,host_failures,vms_displaced,jobs_total,jobs_completed";

/// The two rendered lines of one shard result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRendered {
    /// One row under [`CSV_HEADER`] (no trailing newline).
    pub csv_row: String,
    /// One JSON object (no trailing newline).
    pub json_line: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a completed shard's report.
pub fn render(spec: &ShardSpec, report: &RunReport) -> ShardRendered {
    let csv_row = format!(
        "{},{},{},{},ok,{},{},{},{},{},{},{},{},{}",
        spec.key(),
        spec.seed,
        spec.policy,
        spec.chaos,
        report.energy_kwh,
        report.satisfaction_pct,
        report.delay_pct,
        report.migrations,
        report.creations,
        report.host_failures,
        report.vms_displaced,
        report.jobs_total,
        report.jobs_completed,
    );
    let json_line = format!(
        "{{\"shard\":\"{}\",\"seed\":{},\"policy\":\"{}\",\"chaos\":{},\"status\":\"ok\",\
         \"energy_kwh\":{},\"satisfaction_pct\":{},\"delay_pct\":{},\"migrations\":{},\
         \"creations\":{},\"host_failures\":{},\"vms_displaced\":{},\"jobs_total\":{},\
         \"jobs_completed\":{}}}",
        json_escape(&spec.key()),
        spec.seed,
        json_escape(&spec.policy),
        spec.chaos,
        report.energy_kwh,
        report.satisfaction_pct,
        report.delay_pct,
        report.migrations,
        report.creations,
        report.host_failures,
        report.vms_displaced,
        report.jobs_total,
        report.jobs_completed,
    );
    ShardRendered { csv_row, json_line }
}

/// Renders a quarantined shard: identity columns filled, metrics empty,
/// the failure reason carried in the JSON line.
pub fn render_quarantined(spec: &ShardSpec, attempts: u32, error: &str) -> ShardRendered {
    let csv_row = format!(
        "{},{},{},{},quarantined,,,,,,,,,",
        spec.key(),
        spec.seed,
        spec.policy,
        spec.chaos,
    );
    let json_line = format!(
        "{{\"shard\":\"{}\",\"seed\":{},\"policy\":\"{}\",\"chaos\":{},\
         \"status\":\"quarantined\",\"attempts\":{},\"error\":\"{}\"}}",
        json_escape(&spec.key()),
        spec.seed,
        json_escape(&spec.policy),
        spec.chaos,
        attempts,
        json_escape(error),
    );
    ShardRendered { csv_row, json_line }
}

/// Serializes a rendered result to the worker's result-file contents.
pub fn to_result_file(r: &ShardRendered) -> String {
    format!("{}\n{}\n", r.csv_row, r.json_line)
}

/// Parses a worker result file written by [`to_result_file`]. The file
/// must hold exactly two non-empty lines (CSV row, JSON line); anything
/// else — truncation, an empty file from a dying worker — is an error
/// that fails the attempt.
pub fn from_result_file(text: &str) -> Result<ShardRendered, String> {
    let mut lines = text.lines();
    let csv_row = lines.next().unwrap_or("").to_string();
    let json_line = lines.next().unwrap_or("").to_string();
    if csv_row.is_empty() || json_line.is_empty() || lines.next().is_some() {
        return Err(format!(
            "malformed result file: expected 2 lines, got {}",
            text.lines().count()
        ));
    }
    if !json_line.starts_with('{') || !json_line.ends_with('}') {
        return Err("malformed result file: second line is not a JSON object".into());
    }
    Ok(ShardRendered { csv_row, json_line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ShardSpec {
        ShardSpec {
            index: 0,
            seed: 7,
            policy: "sb".into(),
            chaos: 1.5,
        }
    }

    fn report() -> RunReport {
        let mut r = RunReport::empty("SB".to_string());
        r.energy_kwh = 12.345678;
        r.satisfaction_pct = 99.5;
        r.migrations = 3;
        r.jobs_total = 10;
        r.jobs_completed = 10;
        r
    }

    #[test]
    fn render_is_deterministic_and_round_trips_the_file() {
        let a = render(&spec(), &report());
        let b = render(&spec(), &report());
        assert_eq!(a, b);
        assert!(a
            .csv_row
            .starts_with("s7-sb-x1.5,7,sb,1.5,ok,12.345678,99.5,"));
        assert!(a.json_line.contains("\"status\":\"ok\""));
        let parsed = from_result_file(&to_result_file(&a)).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = render(&spec(), &report());
        assert_eq!(
            r.csv_row.split(',').count(),
            CSV_HEADER.split(',').count(),
            "{}",
            r.csv_row
        );
        let q = render_quarantined(&spec(), 3, "timeout");
        assert_eq!(q.csv_row.split(',').count(), CSV_HEADER.split(',').count());
        assert!(q.json_line.contains("\"attempts\":3"));
    }

    #[test]
    fn truncated_result_files_are_rejected() {
        assert!(from_result_file("").is_err());
        assert!(from_result_file("only one line\n").is_err());
        assert!(from_result_file("a\nnot-json\n").is_err());
        assert!(from_result_file("a\n{\"x\":1}\nextra\n").is_err());
    }

    #[test]
    fn json_escaping_is_applied() {
        let mut s = spec();
        s.policy = "s\"b\\".into();
        let q = render_quarantined(&s, 1, "exit\ncode");
        assert!(q.json_line.contains("s\\\"b\\\\"));
        assert!(q.json_line.contains("exit\\u000acode"));
    }
}
