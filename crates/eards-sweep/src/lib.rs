//! Crash-tolerant sweep farm: a supervised multi-process what-if engine.
//!
//! This crate turns a seed × policy × chaos grid into a fleet of worker
//! processes and merges their results deterministically:
//!
//! - [`grid`] enumerates the shards in a stable order (= merge order);
//! - [`protocol`] is the worker → supervisor stdout line protocol, where
//!   every line is also a heartbeat;
//! - [`supervisor`] spawns workers, SIGKILLs hangs, retries crashes with
//!   exponential backoff (resuming from checkpoints when one survives),
//!   and quarantines shards that exhaust the retry budget;
//! - [`result`] renders each shard's report exactly once, in the process
//!   that ran it;
//! - [`mod@merge`] concatenates rendered rows in grid order, so a parallel
//!   run's merged report is byte-identical to a serial run's.
//!
//! The crate knows nothing about the simulator itself: workers are
//! opaque processes launched from a [`supervisor::WorkerPlan`]. The
//! `eards` CLI provides the actual worker (`sweep-worker` subcommand)
//! and the user-facing `sweep` front-end.

pub mod grid;
pub mod merge;
pub mod protocol;
pub mod result;
pub mod supervisor;

pub use grid::{ShardSpec, SweepGrid};
pub use merge::{merge, MergeEntry, MergedReport, ShardStatus};
pub use result::{render, render_quarantined, ShardRendered, CSV_HEADER};
pub use supervisor::{ckpt_path, run_farm, to_merge_entries, FarmConfig, ShardOutcome, WorkerPlan};
