//! Deterministic merge of shard results into the sweep report.
//!
//! Input is one [`ShardRendered`] per grid cell, keyed by shard index;
//! output is the merged CSV and JSONL report texts. Assembly is pure
//! string concatenation **in grid enumeration order** — completion
//! order, retry counts and resume history leave no trace in the merged
//! bytes, which is what makes `--jobs N` byte-identical to `--serial`.
//!
//! The JSONL report opens with a meta line so a truncated or partial
//! report is self-describing:
//!
//! ```text
//! {"kind":"sweep_report","shards":8,"ok":7,"quarantined":1,"partial":true}
//! ```

use crate::grid::ShardSpec;
use crate::result::{ShardRendered, CSV_HEADER};

/// Terminal state of one shard after the farm is done with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Result file collected.
    Ok,
    /// Gave up after the retry budget; result is a quarantine marker.
    Quarantined,
}

/// One shard's contribution to the merged report.
#[derive(Debug, Clone)]
pub struct MergeEntry {
    /// The grid cell this entry belongs to.
    pub spec: ShardSpec,
    /// Terminal status.
    pub status: ShardStatus,
    /// Rendered rows (from the worker, or a quarantine marker).
    pub rendered: ShardRendered,
}

/// The merged sweep report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedReport {
    /// CSV text: header + one row per shard, trailing newline.
    pub csv: String,
    /// JSONL text: meta line + one object per shard, trailing newline.
    pub jsonl: String,
    /// True when at least one shard was quarantined.
    pub partial: bool,
}

/// Merges shard entries into the report. Entries may arrive in any
/// order; they are sorted by grid index before assembly. Every one of
/// the `expected` grid cells must be present exactly once — a missing
/// or duplicated shard is a supervisor bug and is reported as an error
/// rather than silently dropped.
pub fn merge(mut entries: Vec<MergeEntry>, expected: usize) -> Result<MergedReport, String> {
    if entries.len() != expected {
        return Err(format!(
            "merge: expected {expected} shards, got {}; a shard was dropped or duplicated",
            entries.len()
        ));
    }
    entries.sort_by_key(|e| e.spec.index);
    for (i, e) in entries.iter().enumerate() {
        if e.spec.index != i {
            return Err(format!(
                "merge: expected shard index {i}, got {} ({}); a shard was dropped or duplicated",
                e.spec.index,
                e.spec.key()
            ));
        }
    }
    let quarantined = entries
        .iter()
        .filter(|e| e.status == ShardStatus::Quarantined)
        .count();
    let ok = entries.len() - quarantined;
    let partial = quarantined > 0;

    let mut csv = String::with_capacity(entries.len() * 96 + CSV_HEADER.len() + 1);
    csv.push_str(CSV_HEADER);
    csv.push('\n');
    let mut jsonl = String::with_capacity(entries.len() * 192);
    jsonl.push_str(&format!(
        "{{\"kind\":\"sweep_report\",\"shards\":{},\"ok\":{ok},\"quarantined\":{quarantined},\
         \"partial\":{partial}}}\n",
        entries.len()
    ));
    for e in &entries {
        csv.push_str(&e.rendered.csv_row);
        csv.push('\n');
        jsonl.push_str(&e.rendered.json_line);
        jsonl.push('\n');
    }
    Ok(MergedReport {
        csv,
        jsonl,
        partial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use crate::result::render_quarantined;

    fn entries() -> Vec<MergeEntry> {
        let grid = SweepGrid {
            seeds: vec![1, 2],
            policies: vec!["sb".into()],
            chaos: vec![0.0],
        };
        grid.shards()
            .into_iter()
            .map(|spec| MergeEntry {
                rendered: ShardRendered {
                    csv_row: format!("{},{},sb,0,ok,1,2,3,4,5,6,7,8,9", spec.key(), spec.seed),
                    json_line: format!("{{\"shard\":\"{}\"}}", spec.key()),
                },
                status: ShardStatus::Ok,
                spec,
            })
            .collect()
    }

    #[test]
    fn merge_order_is_grid_order_regardless_of_arrival() {
        let forward = merge(entries(), 2).unwrap();
        let mut shuffled = entries();
        shuffled.reverse();
        let reversed = merge(shuffled, 2).unwrap();
        assert_eq!(forward, reversed);
        assert!(!forward.partial);
        let lines: Vec<&str> = forward.csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("s1-sb-x0,"));
        assert!(lines[2].starts_with("s2-sb-x0,"));
        assert!(forward.jsonl.starts_with(
            "{\"kind\":\"sweep_report\",\"shards\":2,\"ok\":2,\"quarantined\":0,\"partial\":false}\n"
        ));
    }

    #[test]
    fn quarantine_marks_the_report_partial() {
        let mut es = entries();
        es[1].status = ShardStatus::Quarantined;
        es[1].rendered = render_quarantined(&es[1].spec, 3, "timeout");
        let merged = merge(es, 2).unwrap();
        assert!(merged.partial);
        assert!(merged.jsonl.contains("\"quarantined\":1,\"partial\":true"));
        assert!(merged.csv.contains(",quarantined,"));
    }

    #[test]
    fn dropped_or_duplicated_shards_are_an_error() {
        let mut es = entries();
        es.pop();
        assert!(merge(es, 2).is_err());
        let mut es = entries();
        es[1].spec.index = 0;
        assert!(merge(es, 2).is_err());
    }
}
