//! Resource units.
//!
//! CPU follows the paper's convention (§IV-A, Table I): **percent points of
//! one core**, so a 4-way node has a capacity of 400 and a VM running two
//! busy virtual CPUs consumes 200. Demands and capacities are integers;
//! contended *allocations* (what the Xen credit scheduler actually grants)
//! are `f64` percent points.
//!
//! Memory is tracked in MiB. Host *occupation* — the quantity the paper's
//! `P_res` penalty checks — is the utilization of the most-utilized
//! resource.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use eards_sim::{Persist, PersistError, Reader, Writer};

/// CPU in percent points of one core (100 = one full core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cpu(pub u32);

/// Memory in MiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mem(pub u32);

impl Cpu {
    /// Zero CPU.
    pub const ZERO: Cpu = Cpu(0);

    /// CPU of `n` full cores.
    pub const fn cores(n: u32) -> Cpu {
        Cpu(n * 100)
    }

    /// Value in percent points.
    pub const fn points(self) -> u32 {
        self.0
    }

    /// Value as a float, for allocation math.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// Number of whole or partial virtual CPUs this demand needs.
    pub fn vcpus(self) -> u32 {
        self.0.div_ceil(100)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cpu) -> Cpu {
        Cpu(self.0.saturating_sub(rhs.0))
    }
}

impl Mem {
    /// Zero memory.
    pub const ZERO: Mem = Mem(0);

    /// Memory of `n` GiB.
    pub const fn gib(n: u32) -> Mem {
        Mem(n * 1024)
    }

    /// Value in MiB.
    pub const fn mib(self) -> u32 {
        self.0
    }

    /// Value as a float.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }
}

macro_rules! impl_unit_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                debug_assert!(self.0 >= rhs.0, concat!(stringify!($ty), " underflow"));
                $ty(self.0.saturating_sub(rhs.0))
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                *self = *self - rhs;
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0), |a, b| a + b)
            }
        }
    };
}

impl_unit_arith!(Cpu);
impl_unit_arith!(Mem);

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%cpu", self.0)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MiB", self.0)
    }
}

/// A resource bundle: what a VM requires or a host offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// CPU component.
    pub cpu: Cpu,
    /// Memory component.
    pub mem: Mem,
}

impl Resources {
    /// An empty bundle.
    pub const ZERO: Resources = Resources {
        cpu: Cpu::ZERO,
        mem: Mem::ZERO,
    };

    /// Creates a bundle.
    pub const fn new(cpu: Cpu, mem: Mem) -> Self {
        Resources { cpu, mem }
    }

    /// Component-wise `self + rhs`.
    pub fn plus(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu + rhs.cpu,
            mem: self.mem + rhs.mem,
        }
    }

    /// True if every component of `self` fits inside `capacity`.
    pub fn fits_in(self, capacity: Resources) -> bool {
        self.cpu <= capacity.cpu && self.mem <= capacity.mem
    }

    /// Utilization of the *most utilized* resource relative to `capacity`
    /// — the paper's host-occupation measure `O(h)` (§III-A.2). A host with
    /// VMs summing to 80% CPU and 30% memory is 0.8 occupied.
    ///
    /// A zero-capacity component counts as fully occupied if any of it is
    /// demanded.
    pub fn occupation_in(self, capacity: Resources) -> f64 {
        let frac = |used: f64, cap: f64| -> f64 {
            if cap <= 0.0 {
                if used > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                used / cap
            }
        };
        frac(self.cpu.as_f64(), capacity.cpu.as_f64())
            .max(frac(self.mem.as_f64(), capacity.mem.as_f64()))
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.cpu, self.mem)
    }
}

impl Persist for Cpu {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Cpu(r.get_u32()?))
    }
}

impl Persist for Mem {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Mem(r.get_u32()?))
    }
}

impl Persist for Resources {
    fn persist(&self, w: &mut Writer) {
        self.cpu.persist(w);
        self.mem.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Resources {
            cpu: Cpu::restore(r)?,
            mem: Mem::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_basics() {
        assert_eq!(Cpu::cores(4).points(), 400);
        assert_eq!(Cpu(250).vcpus(), 3);
        assert_eq!(Cpu(200).vcpus(), 2);
        assert_eq!(Cpu(1).vcpus(), 1);
        assert_eq!(Cpu(0).vcpus(), 0);
        assert_eq!(Cpu(300).saturating_sub(Cpu(500)), Cpu::ZERO);
        assert_eq!(Cpu(100) + Cpu(50), Cpu(150));
        assert_eq!([Cpu(10), Cpu(20)].into_iter().sum::<Cpu>(), Cpu(30));
    }

    #[test]
    fn mem_basics() {
        assert_eq!(Mem::gib(8).mib(), 8192);
        assert_eq!(Mem(100) - Mem(40), Mem(60));
        assert_eq!(format!("{}", Mem(512)), "512MiB");
        assert_eq!(format!("{}", Cpu(200)), "200%cpu");
    }

    #[test]
    fn occupation_uses_most_occupied_resource() {
        // The paper's example (§III-A.2): VMs at 10% mem + 50% cpu and
        // 65% mem + 30% cpu ⇒ occupation 80% (CPU-bound).
        let cap = Resources::new(Cpu(100), Mem(100));
        let used = Resources::new(Cpu(50), Mem(10)).plus(Resources::new(Cpu(30), Mem(65)));
        assert!((used.occupation_in(cap) - 0.80).abs() < 1e-12);
    }

    #[test]
    fn occupation_memory_bound() {
        let cap = Resources::new(Cpu(400), Mem(1000));
        let used = Resources::new(Cpu(100), Mem(900));
        assert!((used.occupation_in(cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn occupation_zero_capacity() {
        let cap = Resources::new(Cpu(0), Mem(100));
        assert_eq!(
            Resources::new(Cpu(1), Mem(0)).occupation_in(cap),
            f64::INFINITY
        );
        assert_eq!(Resources::ZERO.occupation_in(cap), 0.0);
    }

    #[test]
    fn fits_in_checks_all_components() {
        let cap = Resources::new(Cpu(400), Mem(1024));
        assert!(Resources::new(Cpu(400), Mem(1024)).fits_in(cap));
        assert!(!Resources::new(Cpu(401), Mem(0)).fits_in(cap));
        assert!(!Resources::new(Cpu(0), Mem(2048)).fits_in(cap));
    }
}
