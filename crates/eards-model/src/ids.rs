//! Typed identifiers for hosts, VMs and jobs.

use std::fmt;

use eards_sim::{Persist, PersistError, Reader, Writer};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a physical host. Host ids are dense indices into the
    /// cluster's host table.
    HostId(u32),
    "h"
);
id_type!(
    /// Identifies a virtual machine.
    VmId(u64),
    "vm"
);
id_type!(
    /// Identifies a job (one VM executes one job in this model, as in the
    /// paper's HPC setting, but the ids are distinct concepts: a failed VM
    /// may be recreated for the same job).
    JobId(u64),
    "j"
);

impl Persist for HostId {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(HostId(r.get_u32()?))
    }
}

impl Persist for VmId {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(VmId(r.get_u64()?))
    }
}

impl Persist for JobId {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(JobId(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_raw() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(VmId(12).to_string(), "vm12");
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(HostId(3).raw(), 3);
    }

    #[test]
    fn ordering_and_hash() {
        use std::collections::HashSet;
        assert!(HostId(1) < HostId(2));
        let mut set = HashSet::new();
        set.insert(VmId(1));
        assert!(set.contains(&VmId(1)));
        assert!(!set.contains(&VmId(2)));
    }
}
