//! Physical hosts: capacity, virtualization-overhead class, power state.
//!
//! The paper's evaluation datacenter (§V) has three node classes that
//! differ only in virtualization overheads: 15 *fast* nodes (VM creation
//! `C_c` = 30 s, migration `C_m` = 40 s), 50 *medium* (40/60) and 35 *slow*
//! (60/80). All are 4-way machines matching the testbed of §IV-A.

use eards_sim::{Persist, PersistError, Reader, SimDuration, SimTime, Writer};

use crate::ids::{HostId, VmId};
use crate::job::{Arch, Hypervisor, Requirements};
use crate::units::{Cpu, Mem, Resources};

/// Virtualization-overhead class of a node (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostClass {
    /// `C_c` = 30 s, `C_m` = 40 s (15 nodes in the paper's datacenter).
    Fast,
    /// `C_c` = 40 s, `C_m` = 60 s (50 nodes).
    Medium,
    /// `C_c` = 60 s, `C_m` = 80 s (35 nodes).
    Slow,
}

impl HostClass {
    /// VM creation cost `C_c` for this class.
    pub fn creation_cost(self) -> SimDuration {
        match self {
            HostClass::Fast => SimDuration::from_secs(30),
            HostClass::Medium => SimDuration::from_secs(40),
            HostClass::Slow => SimDuration::from_secs(60),
        }
    }

    /// VM migration cost `C_m` when this class is the destination.
    pub fn migration_cost(self) -> SimDuration {
        match self {
            HostClass::Fast => SimDuration::from_secs(40),
            HostClass::Medium => SimDuration::from_secs(60),
            HostClass::Slow => SimDuration::from_secs(80),
        }
    }

    /// Machine boot time (model constant; the paper simulates boot time but
    /// does not publish the value — we scale it with the class).
    pub fn boot_time(self) -> SimDuration {
        match self {
            HostClass::Fast => SimDuration::from_secs(60),
            HostClass::Medium => SimDuration::from_secs(90),
            HostClass::Slow => SimDuration::from_secs(120),
        }
    }

    /// Graceful shutdown time (model constant).
    pub fn shutdown_time(self) -> SimDuration {
        SimDuration::from_secs(10)
    }
}

/// Static description of a host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Identifier (index into the cluster's host table).
    pub id: HostId,
    /// Overhead class.
    pub class: HostClass,
    /// Total CPU capacity (400 = the paper's 4-way node).
    pub cpu: Cpu,
    /// Total memory.
    pub mem: Mem,
    /// Architecture (for `P_req`).
    pub arch: Arch,
    /// Hypervisor (for `P_req`).
    pub hypervisor: Hypervisor,
    /// Reliability factor `F_rel ∈ [0, 1]`: fraction of time the node is up
    /// (§III-A.6). 1.0 = never fails.
    pub reliability: f64,
}

impl HostSpec {
    /// The paper's standard 4-way node of a given class.
    pub fn standard(id: HostId, class: HostClass) -> Self {
        HostSpec {
            id,
            class,
            cpu: Cpu::cores(4),
            mem: Mem::gib(16),
            arch: Arch::X86_64,
            hypervisor: Hypervisor::Xen,
            reliability: 1.0,
        }
    }

    /// Total resource capacity.
    pub fn capacity(&self) -> Resources {
        Resources::new(self.cpu, self.mem)
    }

    /// Whether this host satisfies a job's hardware/software requirements
    /// (the `P_req` feasibility check, §III-A.1).
    pub fn satisfies(&self, req: &Requirements) -> bool {
        req.arch.is_none_or(|a| a == self.arch)
            && req.hypervisor.is_none_or(|h| h == self.hypervisor)
            && self.cpu.points() / 100 >= req.min_host_cpus
    }
}

/// Power state of a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Powered down (draws no power).
    Off,
    /// Booting; usable at `ready_at`.
    Booting {
        /// Instant the boot completes.
        ready_at: SimTime,
    },
    /// Up and able to host VMs.
    On,
    /// Shutting down; off at `off_at`.
    ShuttingDown {
        /// Instant the shutdown completes.
        off_at: SimTime,
    },
    /// Crashed; requires repair before it can boot again.
    Failed,
}

impl PowerState {
    /// Host is drawing power (anything but fully off/failed).
    pub fn draws_power(self) -> bool {
        !matches!(self, PowerState::Off | PowerState::Failed)
    }

    /// Host counts as *online* for the λ on/off thresholds (§III-C):
    /// powered or committed to power (booting).
    pub fn is_online(self) -> bool {
        matches!(self, PowerState::On | PowerState::Booting { .. })
    }

    /// Host can accept and run VMs right now.
    pub fn is_ready(self) -> bool {
        matches!(self, PowerState::On)
    }
}

/// Kind of in-flight virtualization operation on a host (for `P_conc`,
/// §III-A.3: concurrent operations race for disk/CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// VM creation.
    Create,
    /// Incoming migration (this host is the destination).
    MigrateIn {
        /// Source host.
        from: HostId,
    },
    /// Outgoing migration (this host is the source).
    MigrateOut {
        /// Destination host.
        to: HostId,
    },
    /// Checkpoint write.
    Checkpoint,
}

/// An in-flight operation, tracked on each involved host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightOp {
    /// The VM being operated on.
    pub vm: VmId,
    /// Operation kind.
    pub kind: OpKind,
    /// Start instant.
    pub started: SimTime,
    /// Completion instant.
    pub ends: SimTime,
    /// CPU the operation consumes on this host while in flight
    /// (dom0 work: copying memory pages, unpacking images…).
    pub cpu_overhead: Cpu,
    /// Cluster-wide monotonic identity. Completion/abort events carry it
    /// so a stale event cannot be mistaken for a later operation on the
    /// same VM that happens to share a timestamp.
    pub seq: u64,
}

impl InFlightOp {
    /// Nominal duration cost of the operation, used by `P_conc`.
    pub fn cost(&self) -> SimDuration {
        self.ends.saturating_since(self.started)
    }
}

impl Persist for HostClass {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            HostClass::Fast => 0,
            HostClass::Medium => 1,
            HostClass::Slow => 2,
        });
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(HostClass::Fast),
            1 => Ok(HostClass::Medium),
            2 => Ok(HostClass::Slow),
            t => Err(PersistError::Corrupt(format!("bad HostClass tag {t}"))),
        }
    }
}

impl Persist for HostSpec {
    fn persist(&self, w: &mut Writer) {
        self.id.persist(w);
        self.class.persist(w);
        self.cpu.persist(w);
        self.mem.persist(w);
        self.arch.persist(w);
        self.hypervisor.persist(w);
        w.put_f64(self.reliability);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(HostSpec {
            id: HostId::restore(r)?,
            class: HostClass::restore(r)?,
            cpu: Cpu::restore(r)?,
            mem: Mem::restore(r)?,
            arch: Arch::restore(r)?,
            hypervisor: Hypervisor::restore(r)?,
            reliability: r.get_f64()?,
        })
    }
}

impl Persist for PowerState {
    fn persist(&self, w: &mut Writer) {
        match self {
            PowerState::Off => w.put_u8(0),
            PowerState::Booting { ready_at } => {
                w.put_u8(1);
                ready_at.persist(w);
            }
            PowerState::On => w.put_u8(2),
            PowerState::ShuttingDown { off_at } => {
                w.put_u8(3);
                off_at.persist(w);
            }
            PowerState::Failed => w.put_u8(4),
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(PowerState::Off),
            1 => Ok(PowerState::Booting {
                ready_at: SimTime::restore(r)?,
            }),
            2 => Ok(PowerState::On),
            3 => Ok(PowerState::ShuttingDown {
                off_at: SimTime::restore(r)?,
            }),
            4 => Ok(PowerState::Failed),
            t => Err(PersistError::Corrupt(format!("bad PowerState tag {t}"))),
        }
    }
}

impl Persist for OpKind {
    fn persist(&self, w: &mut Writer) {
        match self {
            OpKind::Create => w.put_u8(0),
            OpKind::MigrateIn { from } => {
                w.put_u8(1);
                from.persist(w);
            }
            OpKind::MigrateOut { to } => {
                w.put_u8(2);
                to.persist(w);
            }
            OpKind::Checkpoint => w.put_u8(3),
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(OpKind::Create),
            1 => Ok(OpKind::MigrateIn {
                from: HostId::restore(r)?,
            }),
            2 => Ok(OpKind::MigrateOut {
                to: HostId::restore(r)?,
            }),
            3 => Ok(OpKind::Checkpoint),
            t => Err(PersistError::Corrupt(format!("bad OpKind tag {t}"))),
        }
    }
}

impl Persist for InFlightOp {
    fn persist(&self, w: &mut Writer) {
        self.vm.persist(w);
        self.kind.persist(w);
        self.started.persist(w);
        self.ends.persist(w);
        self.cpu_overhead.persist(w);
        w.put_u64(self.seq);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(InFlightOp {
            vm: VmId::restore(r)?,
            kind: OpKind::restore(r)?,
            started: SimTime::restore(r)?,
            ends: SimTime::restore(r)?,
            cpu_overhead: Cpu::restore(r)?,
            seq: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_constants_match_paper() {
        assert_eq!(HostClass::Fast.creation_cost(), SimDuration::from_secs(30));
        assert_eq!(HostClass::Fast.migration_cost(), SimDuration::from_secs(40));
        assert_eq!(
            HostClass::Medium.creation_cost(),
            SimDuration::from_secs(40)
        );
        assert_eq!(
            HostClass::Medium.migration_cost(),
            SimDuration::from_secs(60)
        );
        assert_eq!(HostClass::Slow.creation_cost(), SimDuration::from_secs(60));
        assert_eq!(HostClass::Slow.migration_cost(), SimDuration::from_secs(80));
    }

    #[test]
    fn standard_host_is_four_way() {
        let h = HostSpec::standard(HostId(0), HostClass::Medium);
        assert_eq!(h.cpu, Cpu(400));
        assert_eq!(h.capacity().cpu.points(), 400);
        assert_eq!(h.reliability, 1.0);
    }

    #[test]
    fn requirement_satisfaction() {
        let h = HostSpec::standard(HostId(0), HostClass::Fast);
        assert!(h.satisfies(&Requirements::ANY));
        assert!(h.satisfies(&Requirements {
            arch: Some(Arch::X86_64),
            hypervisor: Some(Hypervisor::Xen),
            min_host_cpus: 4,
        }));
        assert!(!h.satisfies(&Requirements {
            arch: Some(Arch::Ppc64),
            ..Requirements::ANY
        }));
        assert!(!h.satisfies(&Requirements {
            hypervisor: Some(Hypervisor::Kvm),
            ..Requirements::ANY
        }));
        assert!(!h.satisfies(&Requirements {
            min_host_cpus: 8,
            ..Requirements::ANY
        }));
    }

    #[test]
    fn power_state_predicates() {
        let t = SimTime::from_secs(10);
        assert!(!PowerState::Off.draws_power());
        assert!(!PowerState::Failed.draws_power());
        assert!(PowerState::Booting { ready_at: t }.draws_power());
        assert!(PowerState::Booting { ready_at: t }.is_online());
        assert!(!PowerState::Booting { ready_at: t }.is_ready());
        assert!(PowerState::On.is_ready());
        assert!(!PowerState::ShuttingDown { off_at: t }.is_online());
        assert!(PowerState::ShuttingDown { off_at: t }.draws_power());
    }

    #[test]
    fn op_cost_is_duration() {
        let op = InFlightOp {
            vm: VmId(1),
            kind: OpKind::Create,
            started: SimTime::from_secs(5),
            ends: SimTime::from_secs(45),
            cpu_overhead: Cpu(50),
            seq: 0,
        };
        assert_eq!(op.cost(), SimDuration::from_secs(40));
    }
}
