//! The pluggable fault model: what can break, how often, and how the
//! driver recovers.
//!
//! §III-A.6 motivates the `P_fault` penalty with node failures, but real
//! datacenters break in more ways than whole-host crashes: boots fail,
//! VM creations die in dom0, live migrations abort mid-copy, hosts slow
//! down under thermal throttling or noisy neighbours, and whole racks
//! drop off the fabric together. [`FaultPlan`] describes all of these as
//! data, so a run injects exactly the failure mix an experiment asks for
//! — and none at all by default ([`FaultPlan::none`] is zero-cost: no
//! extra RNG draws, no extra events).
//!
//! The driver (`eards-datacenter`) samples each fault class from its own
//! per-host RNG stream, so two runs that keep a host up for the same
//! intervals see the same faults on it regardless of what else they
//! randomize — the property the cross-policy determinism tests pin down.

use eards_sim::{Persist, PersistError, Reader, SimDuration, Writer};

/// Transient host slowdown: the host's effective CPU capacity drops to
/// `factor` of nominal for `duration`, then recovers (thermal throttling,
/// a noisy dom0, degraded storage…).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownPlan {
    /// Mean time between episodes while the host is up (exponentially
    /// distributed).
    pub mtbe: SimDuration,
    /// Length of one episode.
    pub duration: SimDuration,
    /// Capacity multiplier during the episode, in `(0, 1)`.
    pub factor: f64,
}

impl Default for SlowdownPlan {
    fn default() -> Self {
        SlowdownPlan {
            mtbe: SimDuration::from_hours(8),
            duration: SimDuration::from_mins(15),
            factor: 0.5,
        }
    }
}

/// Correlated rack-scoped outage: every `rack_size` consecutive host ids
/// form a rack sharing a switch/PDU; when a rack fails, every powered
/// host in it crashes at once.
#[derive(Debug, Clone, PartialEq)]
pub struct RackPlan {
    /// Hosts per rack (consecutive ids; the last rack may be smaller).
    pub rack_size: usize,
    /// Mean time between outages per rack (exponentially distributed).
    pub mtbf: SimDuration,
    /// Time from the outage until the struck hosts are bootable again.
    pub outage: SimDuration,
}

impl Default for RackPlan {
    fn default() -> Self {
        RackPlan {
            rack_size: 8,
            mtbf: SimDuration::from_days(2),
            outage: SimDuration::from_mins(20),
        }
    }
}

/// How the driver recovers from faults: retry backoff for failed
/// creations/migrations and the flapping-host blacklist.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Backoff before the first retry of a failed creation/migration.
    pub base_backoff: SimDuration,
    /// Ceiling of the exponential backoff (the retry delay doubles per
    /// consecutive failure of the same VM, saturating here — retries are
    /// unbounded in count but bounded in delay, so a VM is never dropped).
    pub max_backoff: SimDuration,
    /// After this many crashes a host is blacklisted (0 disables the
    /// blacklist).
    pub blacklist_after: u32,
    /// Reliability penalty applied to a blacklisted host: the score
    /// engine's `P_fault` and power-on ranking see
    /// `reliability − penalty`, steering load away from flapping hosts.
    pub blacklist_penalty: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            base_backoff: SimDuration::from_secs(30),
            max_backoff: SimDuration::from_mins(10),
            blacklist_after: 3,
            blacklist_penalty: 0.05,
        }
    }
}

impl RecoveryPolicy {
    /// Exponential backoff before retry number `attempt` (1-based):
    /// `min(base · 2^(attempt−1), max)`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.base_backoff.as_secs_f64();
        // Cap the exponent: 2^32 seconds is already past any horizon.
        let scaled = base * f64::powi(2.0, attempt.saturating_sub(1).min(32) as i32);
        SimDuration::from_secs_f64(scaled.min(self.max_backoff.as_secs_f64()).max(0.0))
    }
}

/// The full fault-injection plan of one run.
///
/// Every class is independent: enable any subset. The special value
/// [`FaultPlan::none`] (the [`Default`]) injects nothing and costs
/// nothing — the driver draws no fault randomness and schedules no fault
/// events, so a fault-free run is bit-identical to one on a build without
/// the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Inject whole-host crashes (MTTF-sampled; repaired after
    /// [`FaultPlan::mttr`]).
    pub host_crashes: bool,
    /// Uniform MTTF override for crashes. `None` derives each host's MTTF
    /// from its spec reliability (`MTTF = MTTR·rel/(1−rel)`, i.e.
    /// availability = reliability), in which case hosts with
    /// `reliability = 1.0` never crash.
    pub crash_mttf: Option<SimDuration>,
    /// Mean time to repair: how long a crashed host stays down before it
    /// becomes bootable again.
    pub mttr: SimDuration,
    /// Probability that a host boot fails (the host lands in the failed
    /// state and must be repaired instead of coming up).
    pub boot_failure_prob: f64,
    /// Probability that a VM creation aborts partway through.
    pub creation_failure_prob: f64,
    /// Probability that a live migration aborts partway through (the VM
    /// keeps running on the source).
    pub migration_abort_prob: f64,
    /// Transient host slowdowns (`None` disables).
    pub slowdown: Option<SlowdownPlan>,
    /// Correlated rack outages (`None` disables).
    pub rack: Option<RackPlan>,
    /// Recovery policy: retry backoff and the flapping-host blacklist.
    pub recovery: RecoveryPolicy,
    /// Seed of the fault RNG streams. `None` uses the run's driver seed,
    /// so the fault schedule can be varied (or held fixed) independently
    /// of operation jitter.
    pub seed: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No fault injection at all (the default).
    pub fn none() -> Self {
        FaultPlan {
            host_crashes: false,
            crash_mttf: None,
            mttr: SimDuration::from_mins(30),
            boot_failure_prob: 0.0,
            creation_failure_prob: 0.0,
            migration_abort_prob: 0.0,
            slowdown: None,
            rack: None,
            recovery: RecoveryPolicy::default(),
            seed: None,
        }
    }

    /// Reliability-driven host crashes only — the behaviour of the legacy
    /// `failures: bool` flag: each host's MTTF derives from its spec
    /// reliability, and perfectly reliable hosts never crash.
    pub fn crashes() -> Self {
        FaultPlan {
            host_crashes: true,
            ..Self::none()
        }
    }

    /// A full chaos mix scaled by `intensity` (0 disables everything;
    /// 1.0 is a harsh but survivable baseline; larger is harsher). Used
    /// by the `exp_chaos` escalating-fault-rate experiment.
    pub fn chaos(intensity: f64) -> Self {
        if intensity <= 0.0 {
            return Self::none();
        }
        let scale = |d: SimDuration| SimDuration::from_secs_f64(d.as_secs_f64() / intensity);
        FaultPlan {
            host_crashes: true,
            crash_mttf: Some(scale(SimDuration::from_hours(12))),
            mttr: SimDuration::from_mins(20),
            boot_failure_prob: (0.02 * intensity).min(0.5),
            creation_failure_prob: (0.03 * intensity).min(0.5),
            migration_abort_prob: (0.03 * intensity).min(0.5),
            slowdown: Some(SlowdownPlan {
                mtbe: scale(SimDuration::from_hours(8)),
                ..SlowdownPlan::default()
            }),
            rack: Some(RackPlan {
                mtbf: scale(SimDuration::from_days(2)),
                ..RackPlan::default()
            }),
            recovery: RecoveryPolicy::default(),
            seed: None,
        }
    }

    /// True if the plan injects nothing (every class disabled).
    pub fn is_none(&self) -> bool {
        !self.host_crashes
            && self.boot_failure_prob <= 0.0
            && self.creation_failure_prob <= 0.0
            && self.migration_abort_prob <= 0.0
            && self.slowdown.is_none()
            && self.rack.is_none()
    }

    /// Sets the independent fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

impl Persist for SlowdownPlan {
    fn persist(&self, w: &mut Writer) {
        self.mtbe.persist(w);
        self.duration.persist(w);
        w.put_f64(self.factor);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SlowdownPlan {
            mtbe: SimDuration::restore(r)?,
            duration: SimDuration::restore(r)?,
            factor: r.get_f64()?,
        })
    }
}

impl Persist for RackPlan {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.rack_size);
        self.mtbf.persist(w);
        self.outage.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RackPlan {
            rack_size: r.get_usize()?,
            mtbf: SimDuration::restore(r)?,
            outage: SimDuration::restore(r)?,
        })
    }
}

impl Persist for RecoveryPolicy {
    fn persist(&self, w: &mut Writer) {
        self.base_backoff.persist(w);
        self.max_backoff.persist(w);
        w.put_u32(self.blacklist_after);
        w.put_f64(self.blacklist_penalty);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RecoveryPolicy {
            base_backoff: SimDuration::restore(r)?,
            max_backoff: SimDuration::restore(r)?,
            blacklist_after: r.get_u32()?,
            blacklist_penalty: r.get_f64()?,
        })
    }
}

impl Persist for FaultPlan {
    fn persist(&self, w: &mut Writer) {
        w.put_bool(self.host_crashes);
        w.put_opt(&self.crash_mttf);
        self.mttr.persist(w);
        w.put_f64(self.boot_failure_prob);
        w.put_f64(self.creation_failure_prob);
        w.put_f64(self.migration_abort_prob);
        w.put_opt(&self.slowdown);
        w.put_opt(&self.rack);
        self.recovery.persist(w);
        w.put_opt(&self.seed);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(FaultPlan {
            host_crashes: r.get_bool()?,
            crash_mttf: r.get_opt()?,
            mttr: SimDuration::restore(r)?,
            boot_failure_prob: r.get_f64()?,
            creation_failure_prob: r.get_f64()?,
            migration_abort_prob: r.get_f64()?,
            slowdown: r.get_opt()?,
            rack: r.get_opt()?,
            recovery: RecoveryPolicy::restore(r)?,
            seed: r.get_opt()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_none() {
        let p = FaultPlan::default();
        assert!(p.is_none());
        assert_eq!(p, FaultPlan::none());
    }

    #[test]
    fn crashes_plan_enables_only_crashes() {
        let p = FaultPlan::crashes();
        assert!(p.host_crashes);
        assert!(!p.is_none());
        assert_eq!(p.creation_failure_prob, 0.0);
        assert!(p.slowdown.is_none() && p.rack.is_none());
    }

    #[test]
    fn chaos_scales_with_intensity() {
        assert!(FaultPlan::chaos(0.0).is_none());
        let one = FaultPlan::chaos(1.0);
        let two = FaultPlan::chaos(2.0);
        assert!(one.host_crashes && two.host_crashes);
        assert!(two.creation_failure_prob > one.creation_failure_prob);
        assert!(two.crash_mttf.unwrap() < one.crash_mttf.unwrap());
        assert!(two.slowdown.as_ref().unwrap().mtbe < one.slowdown.as_ref().unwrap().mtbe);
        // Probabilities saturate rather than exceed 1.
        assert!(FaultPlan::chaos(1e6).creation_failure_prob <= 0.5);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.backoff(1), SimDuration::from_secs(30));
        assert_eq!(r.backoff(2), SimDuration::from_secs(60));
        assert_eq!(r.backoff(3), SimDuration::from_secs(120));
        assert_eq!(r.backoff(100), r.max_backoff, "bounded delay");
        // Attempt 0 is treated like the first.
        assert_eq!(r.backoff(0), SimDuration::from_secs(30));
    }
}
