//! The datacenter world state: hosts, VMs, placements, in-flight
//! operations, and the CPU/power accounting over them.
//!
//! `Cluster` is the single source of truth the driver mutates and the
//! scheduling policies read. All state transitions assert their
//! preconditions — an illegal transition is a simulator bug, not a
//! recoverable condition.

use std::collections::HashMap;

use eards_sim::{Persist, PersistError, Reader, SimTime, Writer};

use crate::host::{HostSpec, InFlightOp, OpKind, PowerState};
use crate::ids::{HostId, VmId};
use crate::job::Job;
use crate::power::PowerModel;
use crate::units::{Cpu, Resources};
use crate::vm::{Vm, VmState};
use crate::xen::{self, CpuContender};

/// CPU consumed on a host by one in-flight VM creation (dom0 image
/// unpacking and domain construction), in percent points.
pub const CREATION_CPU_OVERHEAD: Cpu = Cpu(50);
/// CPU consumed on *each* endpoint by one in-flight live migration
/// (iterative page copying saturates a core on both sides), in percent
/// points.
pub const MIGRATION_CPU_OVERHEAD: Cpu = Cpu(100);
/// CPU consumed by a checkpoint write.
pub const CHECKPOINT_CPU_OVERHEAD: Cpu = Cpu(25);

/// Runtime state of one physical host.
#[derive(Debug, Clone)]
pub struct Host {
    /// Static description.
    pub spec: HostSpec,
    /// Current power state.
    pub power: PowerState,
    /// VMs whose resources this host accounts and whose execution it
    /// carries (includes VMs migrating *out*, which still run here).
    pub resident: Vec<VmId>,
    /// VMs migrating *in*: their resources are reserved here but they
    /// still execute on the source.
    pub incoming: Vec<VmId>,
    /// In-flight virtualization operations touching this host.
    pub ops: Vec<InFlightOp>,
    /// Effective-capacity multiplier in `(0, 1]`; below 1 during a
    /// transient slowdown episode (thermal throttling, noisy dom0).
    pub cpu_factor: f64,
    /// Reliability penalty applied on top of the spec reliability while
    /// the host is blacklisted as flapping; 0 otherwise.
    pub reliability_penalty: f64,
}

impl Host {
    fn new(spec: HostSpec, power: PowerState) -> Self {
        Host {
            spec,
            power,
            resident: Vec::new(),
            incoming: Vec::new(),
            ops: Vec::new(),
            cpu_factor: 1.0,
            reliability_penalty: 0.0,
        }
    }

    /// Total CPU burned by in-flight operations on this host.
    pub fn op_cpu_overhead(&self) -> Cpu {
        self.ops.iter().map(|o| o.cpu_overhead).sum()
    }

    /// True if the host carries no VMs at all (candidates for power-off).
    pub fn is_idle(&self) -> bool {
        self.resident.is_empty() && self.incoming.is_empty() && self.ops.is_empty()
    }

    /// True if the host is *working* in the paper's sense (§V): executing
    /// at least one VM (or committed to one via an in-flight operation).
    pub fn is_working(&self) -> bool {
        !self.resident.is_empty() || !self.incoming.is_empty()
    }
}

/// The mutable datacenter state.
///
/// ```
/// use eards_model::*;
/// use eards_sim::{SimDuration, SimTime};
///
/// // Two 4-way nodes; a job arrives, is created on host 0, runs, finishes.
/// let specs = vec![
///     HostSpec::standard(HostId(0), HostClass::Medium),
///     HostSpec::standard(HostId(1), HostClass::Fast),
/// ];
/// let mut cluster = Cluster::new(specs, PowerState::On);
/// let job = Job::new(
///     JobId(0), SimTime::ZERO, Cpu(200), Mem::gib(2),
///     SimDuration::from_secs(600), 1.5,
/// );
/// let vm = cluster.submit_job(job);
/// assert_eq!(cluster.queue(), &[vm]);
///
/// cluster.start_creation(vm, HostId(0), SimTime::ZERO, SimTime::from_secs(40));
/// cluster.finish_creation(vm, SimTime::from_secs(40));
/// cluster.reallocate_host(HostId(0), SimTime::from_secs(40));
/// assert_eq!(cluster.vm(vm).alloc, 200.0);
/// assert_eq!(cluster.occupation(HostId(0)), 0.5);
///
/// cluster.finish_vm(vm, SimTime::from_secs(640));
/// assert!(cluster.host(HostId(0)).is_idle());
/// ```
pub struct Cluster {
    hosts: Vec<Host>,
    // Keyed VmId lookups; the only iterations are the documented-unordered
    // vms() accessor and order-insensitive verify().
    // lint:allow(D001): keyed lookups; iteration sites carry their own reasons
    vms: HashMap<VmId, Vm>,
    /// The paper's *virtual host* (§III-A): VMs awaiting allocation, in
    /// arrival order. Holds new arrivals and VMs displaced by failures.
    queue: Vec<VmId>,
    next_vm_id: u64,
    /// Monotonic identity for in-flight operations. Timestamps cannot
    /// serve as identity: an abort scheduled for the same tick as a later
    /// operation's completion would collide on `ends`.
    next_op_seq: u64,
}

impl Cluster {
    /// Builds a cluster; every host starts in `initial_power`.
    pub fn new(specs: Vec<HostSpec>, initial_power: PowerState) -> Self {
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(
                s.id.raw() as usize,
                i,
                "host specs must be supplied in id order"
            );
        }
        Cluster {
            hosts: specs
                .into_iter()
                .map(|s| Host::new(s, initial_power))
                .collect(),
            vms: HashMap::new(),
            queue: Vec::new(),
            next_vm_id: 0,
            next_op_seq: 0,
        }
    }

    /// Hands out the next operation sequence number.
    fn alloc_op_seq(&mut self) -> u64 {
        let seq = self.next_op_seq;
        self.next_op_seq += 1;
        seq
    }

    // ----- read access ---------------------------------------------------

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.raw() as usize]
    }

    /// All hosts in id order.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// A VM by id. Panics on unknown ids (ids are never invented).
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[&id]
    }

    /// Mutable VM access (used by the driver for progress bookkeeping).
    pub fn vm_mut(&mut self, id: VmId) -> &mut Vm {
        self.vms.get_mut(&id).expect("unknown VmId")
    }

    /// All VMs (unordered).
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        // Documented unordered: callers needing a stable order sort by VmId.
        // lint:allow(D001): accessor is documented unordered
        self.vms.values()
    }

    /// Total VMs ever admitted (including finished ones).
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// The virtual-host queue, in arrival order.
    pub fn queue(&self) -> &[VmId] {
        &self.queue
    }

    /// Number of hosts currently *working* (executing ≥ 1 VM).
    pub fn working_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_working()).count()
    }

    /// Number of hosts currently online (on or booting).
    pub fn online_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.power.is_online()).count()
    }

    /// Reliability of a host as the score engine should see it: the spec
    /// reliability minus any flapping-blacklist penalty. Equal to the raw
    /// spec value (bit-exact: `r − 0.0`) while the host is not
    /// blacklisted.
    pub fn effective_reliability(&self, host: HostId) -> f64 {
        let h = self.host(host);
        (h.spec.reliability - h.reliability_penalty).max(0.0)
    }

    /// True if the host currently carries a flapping-blacklist penalty.
    pub fn is_blacklisted(&self, host: HostId) -> bool {
        self.host(host).reliability_penalty > 0.0
    }

    // ----- resource accounting -------------------------------------------

    /// Resources committed on a host: requested bundles of resident plus
    /// incoming VMs.
    pub fn committed(&self, host: HostId) -> Resources {
        let h = self.host(host);
        h.resident
            .iter()
            .chain(h.incoming.iter())
            .fold(Resources::ZERO, |acc, id| acc.plus(self.vms[id].requested))
    }

    /// The paper's host occupation `O(h)`: utilization of the most used
    /// resource (§III-A.2).
    pub fn occupation(&self, host: HostId) -> f64 {
        self.committed(host)
            .occupation_in(self.host(host).spec.capacity())
    }

    /// Occupation the host would have after additionally hosting `vm`
    /// (`O(h, vm)`). If the VM is already accounted there, this is just the
    /// current occupation.
    pub fn occupation_with(&self, host: HostId, vm: VmId) -> f64 {
        let h = self.host(host);
        let already = h.resident.contains(&vm) || h.incoming.contains(&vm);
        let mut used = self.committed(host);
        if !already {
            used = used.plus(self.vms[&vm].requested);
        }
        used.occupation_in(h.spec.capacity())
    }

    /// Strict placement feasibility: host ready, hardware/software
    /// requirements satisfied, and occupation after placement ≤ 1. This is
    /// the condition the paper's `P_res` penalty enforces (§III-A.2);
    /// consolidation-aware policies use it.
    pub fn can_place(&self, host: HostId, vm: VmId) -> bool {
        self.can_place_overcommitted(host, vm) && self.occupation_with(host, vm) <= 1.0
    }

    /// Relaxed placement feasibility: host ready, requirements satisfied,
    /// and *memory* fits. CPU may be overcommitted — Xen then time-shares
    /// it, slowing every VM on the host. The paper's naive baselines
    /// (Random, Round-Robin) place like this, which is precisely why they
    /// post 300–475% delays in Table II.
    pub fn can_place_overcommitted(&self, host: HostId, vm: VmId) -> bool {
        let h = self.host(host);
        h.power.is_ready()
            && h.spec.satisfies(&self.vms[&vm].job.requirements)
            && self.committed(host).mem + self.vms[&vm].requested.mem <= h.spec.capacity().mem
    }

    /// CPU in use on a host: current VM allocations plus operation
    /// overheads. This is what the power model sees.
    pub fn cpu_used(&self, host: HostId) -> f64 {
        let h = self.host(host);
        let vm_cpu: f64 = h.resident.iter().map(|id| self.vms[id].alloc).sum();
        vm_cpu + h.op_cpu_overhead().as_f64()
    }

    /// Instantaneous power draw of one host under `model`, in Watts.
    pub fn host_power(&self, host: HostId, model: &dyn PowerModel) -> f64 {
        let h = self.host(host);
        if !h.power.draws_power() {
            return 0.0;
        }
        model.power_watts(self.cpu_used(host), h.spec.cpu)
    }

    /// Instantaneous power draw of the whole datacenter, in Watts.
    pub fn total_power(&self, model: &dyn PowerModel) -> f64 {
        (0..self.hosts.len())
            .map(|i| self.host_power(HostId(i as u32), model))
            .sum()
    }

    // ----- job / VM lifecycle ---------------------------------------------

    /// Admits a job: wraps it in a queued VM on the virtual host.
    pub fn submit_job(&mut self, job: Job) -> VmId {
        let id = VmId(self.next_vm_id);
        self.next_vm_id += 1;
        self.vms.insert(id, Vm::for_job(id, job));
        self.queue.push(id);
        id
    }

    /// Starts creating `vm` on `host`. The VM leaves the queue; its
    /// resources are committed; a creation op burns CPU until `ends`.
    /// Returns the operation's sequence number, the token completion and
    /// abort events must present to prove they refer to *this* operation.
    pub fn start_creation(&mut self, vm: VmId, host: HostId, now: SimTime, ends: SimTime) -> u64 {
        assert!(
            self.can_place_overcommitted(host, vm),
            "start_creation on infeasible host (off, unsatisfied requirements, or out of memory)"
        );
        let seq = self.alloc_op_seq();
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Queued, "only queued VMs can be created");
        v.state = VmState::Creating;
        v.host = Some(host);
        v.last_update = now;
        self.queue.retain(|&q| q != vm);
        let h = &mut self.hosts[host.raw() as usize];
        h.resident.push(vm);
        h.ops.push(InFlightOp {
            vm,
            kind: OpKind::Create,
            started: now,
            ends,
            cpu_overhead: CREATION_CPU_OVERHEAD,
            seq,
        });
        seq
    }

    /// Completes a creation: the VM starts executing its job.
    pub fn finish_creation(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Creating);
        v.state = VmState::Running;
        v.started_at = Some(now);
        v.last_update = now;
        let host = v.host.expect("creating VM must have a host");
        self.hosts[host.raw() as usize]
            .ops
            .retain(|o| !(o.vm == vm && o.kind == OpKind::Create));
    }

    /// Aborts an in-flight creation (dom0 failure): the VM returns to the
    /// virtual-host queue as if never placed, ready to be retried.
    pub fn abort_creation(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Creating, "only creating VMs abort");
        let host = v.host.take().expect("creating VM must have a host");
        v.state = VmState::Queued;
        v.alloc = 0.0;
        v.last_update = now;
        let h = &mut self.hosts[host.raw() as usize];
        h.resident.retain(|&r| r != vm);
        h.ops.retain(|o| !(o.vm == vm && o.kind == OpKind::Create));
        self.queue.push(vm);
    }

    /// Starts a live migration of `vm` to `to`. Resources are reserved on
    /// the destination; the VM keeps running on the source; both endpoints
    /// pay a CPU overhead until `ends`. Returns the operation's sequence
    /// number (shared by the `MigrateIn`/`MigrateOut` pair — one logical
    /// operation, two bookkeeping entries).
    pub fn start_migration(&mut self, vm: VmId, to: HostId, now: SimTime, ends: SimTime) -> u64 {
        assert!(
            self.can_place_overcommitted(to, vm),
            "migration target must be on, satisfy requirements, and have memory"
        );
        let seq = self.alloc_op_seq();
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Running, "only running VMs migrate");
        let from = v.host.expect("running VM must have a host");
        assert_ne!(from, to, "migration to the current host");
        v.state = VmState::Migrating { to };
        self.hosts[to.raw() as usize].incoming.push(vm);
        self.hosts[to.raw() as usize].ops.push(InFlightOp {
            vm,
            kind: OpKind::MigrateIn { from },
            started: now,
            ends,
            cpu_overhead: MIGRATION_CPU_OVERHEAD,
            seq,
        });
        self.hosts[from.raw() as usize].ops.push(InFlightOp {
            vm,
            kind: OpKind::MigrateOut { to },
            started: now,
            ends,
            cpu_overhead: MIGRATION_CPU_OVERHEAD,
            seq,
        });
        seq
    }

    /// Completes a migration: the VM now runs on the destination.
    pub fn finish_migration(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        let to = match v.state {
            VmState::Migrating { to } => to,
            // lint:allow(P001): state-machine misuse is a caller bug; failing loud beats silently corrupting placement
            s => panic!("finish_migration on VM in state {s:?}"),
        };
        let from = v.host.expect("migrating VM must have a source");
        v.state = VmState::Running;
        v.host = Some(to);
        v.migrations += 1;
        v.last_update = now;
        let fh = &mut self.hosts[from.raw() as usize];
        fh.resident.retain(|&r| r != vm);
        fh.ops
            .retain(|o| !(o.vm == vm && matches!(o.kind, OpKind::MigrateOut { .. })));
        let th = &mut self.hosts[to.raw() as usize];
        th.incoming.retain(|&r| r != vm);
        th.resident.push(vm);
        th.ops
            .retain(|o| !(o.vm == vm && matches!(o.kind, OpKind::MigrateIn { .. })));
    }

    /// Aborts an in-flight migration (page-copy failure): the reservation
    /// on the destination is released and the VM keeps running on the
    /// source, where it executed all along.
    pub fn abort_migration(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        let to = match v.state {
            VmState::Migrating { to } => to,
            // lint:allow(P001): state-machine misuse is a caller bug; failing loud beats silently corrupting placement
            s => panic!("abort_migration on VM in state {s:?}"),
        };
        let from = v.host.expect("migrating VM must have a source");
        // The VM executed on the source throughout: bank that progress.
        v.advance_progress(now);
        v.state = VmState::Running;
        let th = &mut self.hosts[to.raw() as usize];
        th.incoming.retain(|&r| r != vm);
        th.ops
            .retain(|o| !(o.vm == vm && matches!(o.kind, OpKind::MigrateIn { .. })));
        let fh = &mut self.hosts[from.raw() as usize];
        fh.ops
            .retain(|o| !(o.vm == vm && matches!(o.kind, OpKind::MigrateOut { .. })));
    }

    /// Starts a checkpoint of a running VM. Returns the operation's
    /// sequence number.
    pub fn start_checkpoint(&mut self, vm: VmId, now: SimTime, ends: SimTime) -> u64 {
        let seq = self.alloc_op_seq();
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Running, "only running VMs checkpoint");
        v.state = VmState::Checkpointing;
        let host = v.host.expect("running VM must have a host");
        self.hosts[host.raw() as usize].ops.push(InFlightOp {
            vm,
            kind: OpKind::Checkpoint,
            started: now,
            ends,
            cpu_overhead: CHECKPOINT_CPU_OVERHEAD,
            seq,
        });
        seq
    }

    /// Completes a checkpoint, storing the VM's progress at `now`.
    pub fn finish_checkpoint(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert_eq!(v.state, VmState::Checkpointing);
        v.advance_progress(now);
        v.checkpoint = Some(v.progress);
        v.state = VmState::Running;
        let host = v.host.expect("checkpointing VM must have a host");
        self.hosts[host.raw() as usize]
            .ops
            .retain(|o| !(o.vm == vm && o.kind == OpKind::Checkpoint));
    }

    /// Completes a job: the VM is destroyed and its resources released.
    pub fn finish_vm(&mut self, vm: VmId, now: SimTime) {
        let v = self.vms.get_mut(&vm).expect("unknown VmId");
        assert!(
            matches!(v.state, VmState::Running),
            "only running VMs finish (state {:?})",
            v.state
        );
        v.advance_progress(now);
        v.state = VmState::Finished;
        v.completed_at = Some(now);
        v.alloc = 0.0;
        let host = v.host.take().expect("running VM must have a host");
        self.hosts[host.raw() as usize]
            .resident
            .retain(|&r| r != vm);
    }

    // ----- power transitions ----------------------------------------------

    /// Begins booting an off host; ready at the returned instant.
    pub fn begin_power_on(&mut self, host: HostId, now: SimTime) -> SimTime {
        let h = &mut self.hosts[host.raw() as usize];
        assert_eq!(h.power, PowerState::Off, "can only boot an off host");
        let ready_at = now + h.spec.class.boot_time();
        h.power = PowerState::Booting { ready_at };
        ready_at
    }

    /// Marks a booting host as up.
    pub fn complete_power_on(&mut self, host: HostId) {
        let h = &mut self.hosts[host.raw() as usize];
        assert!(
            matches!(h.power, PowerState::Booting { .. }),
            "complete_power_on on non-booting host"
        );
        h.power = PowerState::On;
    }

    /// Begins a graceful shutdown of an idle host; off at the returned
    /// instant.
    pub fn begin_power_off(&mut self, host: HostId, now: SimTime) -> SimTime {
        let h = &mut self.hosts[host.raw() as usize];
        assert_eq!(h.power, PowerState::On, "can only shut down an on host");
        assert!(h.is_idle(), "cannot shut down a host with VMs or ops");
        let off_at = now + h.spec.class.shutdown_time();
        h.power = PowerState::ShuttingDown { off_at };
        off_at
    }

    /// Marks a shutting-down host as off.
    pub fn complete_power_off(&mut self, host: HostId) {
        let h = &mut self.hosts[host.raw() as usize];
        assert!(
            matches!(h.power, PowerState::ShuttingDown { .. }),
            "complete_power_off on non-shutting-down host"
        );
        h.power = PowerState::Off;
    }

    /// Crashes a host: every VM touching it is torn down and re-queued on
    /// the virtual host (§III-C), restored from its last checkpoint if one
    /// exists. Returns the displaced VMs.
    pub fn fail_host(&mut self, host: HostId, now: SimTime) -> Vec<VmId> {
        let h = &mut self.hosts[host.raw() as usize];
        let displaced: Vec<VmId> = h.resident.drain(..).chain(h.incoming.drain(..)).collect();
        let ops: Vec<InFlightOp> = h.ops.drain(..).collect();
        h.power = PowerState::Failed;

        // Migrations in flight also leave residue on the peer host.
        for op in ops {
            let peer = match op.kind {
                OpKind::MigrateIn { from } => Some(from),
                OpKind::MigrateOut { to } => Some(to),
                _ => None,
            };
            if let Some(p) = peer {
                let ph = &mut self.hosts[p.raw() as usize];
                ph.resident.retain(|&r| r != op.vm);
                ph.incoming.retain(|&r| r != op.vm);
                ph.ops.retain(|o| o.vm != op.vm);
            }
        }

        let mut requeued = Vec::new();
        for vm in displaced {
            let v = self.vms.get_mut(&vm).expect("unknown VmId");
            if v.state == VmState::Finished {
                continue;
            }
            if requeued.contains(&vm) {
                continue; // migrating VM appears on both endpoints
            }
            v.advance_progress(now);
            // Lose uncheckpointed work.
            v.progress = v.checkpoint.unwrap_or(0.0);
            v.state = VmState::Queued;
            v.host = None;
            v.alloc = 0.0;
            v.last_update = now;
            self.queue.push(vm);
            requeued.push(vm);
        }
        requeued
    }

    /// Fails a boot in progress: the host lands in the failed state (it
    /// must be repaired before the next boot attempt). Booting hosts carry
    /// no VMs, so nothing is displaced.
    pub fn fail_boot(&mut self, host: HostId) {
        let h = &mut self.hosts[host.raw() as usize];
        assert!(
            matches!(h.power, PowerState::Booting { .. }),
            "fail_boot on non-booting host"
        );
        assert!(h.is_idle(), "booting host cannot carry VMs");
        h.power = PowerState::Failed;
    }

    /// Repairs a failed host back to the off state.
    pub fn repair_host(&mut self, host: HostId) {
        let h = &mut self.hosts[host.raw() as usize];
        assert_eq!(h.power, PowerState::Failed, "repair of a non-failed host");
        h.power = PowerState::Off;
    }

    /// Applies (or clears, with `0.0`) the flapping-blacklist reliability
    /// penalty on a host. Read back through [`Cluster::effective_reliability`].
    pub fn blacklist(&mut self, host: HostId, penalty: f64) {
        assert!((0.0..=1.0).contains(&penalty), "penalty must be in [0, 1]");
        self.hosts[host.raw() as usize].reliability_penalty = penalty;
    }

    /// Sets the host's effective-capacity multiplier (1.0 = nominal).
    /// Callers must re-run [`Cluster::reallocate_host`] afterwards.
    pub fn set_cpu_factor(&mut self, host: HostId, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "cpu factor must be in (0, 1]"
        );
        self.hosts[host.raw() as usize].cpu_factor = factor;
    }

    // ----- CPU sharing -----------------------------------------------------

    /// Re-runs the Xen credit scheduler on one host: advances every
    /// resident VM's progress to `now` under the old allocations, then
    /// grants new ones. Must be called whenever the host's VM set or op
    /// set changes.
    pub fn reallocate_host(&mut self, host: HostId, now: SimTime) {
        let resident = self.hosts[host.raw() as usize].resident.clone();
        // Progress first — under the allocations that held until `now`.
        for &id in &resident {
            self.vms
                .get_mut(&id)
                .expect("unknown VmId")
                .advance_progress(now);
        }
        let h = &self.hosts[host.raw() as usize];
        // `cpu_factor` is exactly 1.0 outside slowdown episodes, and
        // `x * 1.0 == x` bit-for-bit, so the fault layer costs nothing here
        // when disabled.
        let capacity = (h.spec.cpu.as_f64() * h.cpu_factor - h.op_cpu_overhead().as_f64()).max(0.0);
        let contenders: Vec<CpuContender> = resident
            .iter()
            .map(|id| {
                let v = &self.vms[id];
                if v.state.is_executing() {
                    CpuContender {
                        demand: v.job.cpu.as_f64(),
                        weight: 256.0,
                        cap: v.req_cpu().as_f64(),
                    }
                } else {
                    // Creating VMs reserve resources but consume none yet.
                    CpuContender {
                        demand: 0.0,
                        weight: 256.0,
                        cap: 0.0,
                    }
                }
            })
            .collect();
        let allocs = xen::allocate(capacity, &contenders);
        for (id, alloc) in resident.iter().zip(allocs) {
            self.vms.get_mut(id).expect("unknown VmId").alloc = alloc;
        }
    }

    /// Advances progress of every VM on a host without changing
    /// allocations (used before reading progress-sensitive state).
    pub fn touch_host(&mut self, host: HostId, now: SimTime) {
        let resident = self.hosts[host.raw() as usize].resident.clone();
        for id in resident {
            self.vms
                .get_mut(&id)
                .expect("unknown VmId")
                .advance_progress(now);
        }
    }

    // ----- invariants -------------------------------------------------------

    /// Structural invariant check for tests: delegates to
    /// [`Cluster::verify`] and panics on the first violation.
    pub fn check_invariants(&self) {
        if let Err(msg) = self.verify() {
            // lint:allow(P001): the whole point of this helper is to abort the test run on a violated invariant
            panic!("cluster invariant violated: {msg}");
        }
    }

    /// Deep structural verification, the auditor's workhorse: every VM's
    /// `host` field agrees with the hosts' resident/incoming lists, no VM
    /// is accounted twice, queued VMs are exactly the queue, committed
    /// memory never exceeds capacity, and non-ready hosts carry no VMs.
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), String> {
        let mut seen_resident: HashMap<VmId, HostId> = HashMap::new();
        for h in &self.hosts {
            let id = h.spec.id;
            for &vm in &h.resident {
                if seen_resident.insert(vm, id).is_some() {
                    return Err(format!("{vm} resident on two hosts"));
                }
                // `.get`, not indexing: `verify` also gates snapshot
                // restore, where corrupt bytes can produce residency
                // lists naming VMs absent from the table — that must be
                // a reported violation, not a panic.
                match self.vms.get(&vm) {
                    None => return Err(format!("{vm} resident on {id} but not in the VM table")),
                    Some(v) if v.host != Some(id) => {
                        return Err(format!("{vm} host field disagrees with {id} residency"))
                    }
                    Some(_) => {}
                }
            }
            for &vm in &h.incoming {
                match self.vms.get(&vm).map(|v| v.state) {
                    Some(VmState::Migrating { to }) if to == id => {}
                    None => return Err(format!("incoming {vm} on {id} not in the VM table")),
                    s => {
                        return Err(format!(
                            "incoming {vm} on {id} not migrating there (state {s:?})"
                        ))
                    }
                }
            }
            match h.power {
                PowerState::On => {}
                PowerState::ShuttingDown { .. }
                | PowerState::Off
                | PowerState::Failed
                | PowerState::Booting { .. } => {
                    if !h.is_idle() {
                        return Err(format!("{id} carries VMs/ops in state {:?}", h.power));
                    }
                }
            }
            let committed = self.committed(id);
            if committed.mem > h.spec.capacity().mem {
                return Err(format!(
                    "{id} memory oversubscribed: {:?} committed on {:?}",
                    committed.mem,
                    h.spec.capacity().mem
                ));
            }
            if !(h.cpu_factor > 0.0 && h.cpu_factor <= 1.0) {
                return Err(format!("{id} cpu factor {} out of (0, 1]", h.cpu_factor));
            }
        }
        for &vm in &self.queue {
            let Some(v) = self.vms.get(&vm) else {
                return Err(format!("queued {vm} not in the VM table"));
            };
            if v.state != VmState::Queued {
                return Err(format!("{vm} in queue but in state {:?}", v.state));
            }
            if v.host.is_some() {
                return Err(format!("queued {vm} has a host"));
            }
            if seen_resident.contains_key(&vm) {
                return Err(format!("queued {vm} also resident"));
            }
        }
        // Each VM is checked independently; visit order only picks which
        // violation's message surfaces first.
        // lint:allow(D001): order-insensitive per-VM checks
        for v in self.vms.values() {
            match v.state {
                VmState::Queued => {
                    if !self.queue.contains(&v.id) {
                        return Err(format!("{} Queued but missing from the queue", v.id));
                    }
                }
                VmState::Finished => {
                    if v.host.is_some() || seen_resident.contains_key(&v.id) {
                        return Err(format!("finished {} still placed", v.id));
                    }
                }
                _ => {
                    if !seen_resident.contains_key(&v.id) {
                        return Err(format!("{} active but not resident anywhere", v.id));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Canonical state: spec, power state, residency lists (order matters —
/// allocation math iterates them), in-flight ops, and the fault-layer
/// multipliers. Everything a host owns is canonical; nothing is rebuilt.
impl Persist for Host {
    fn persist(&self, w: &mut Writer) {
        self.spec.persist(w);
        self.power.persist(w);
        self.resident.persist(w);
        self.incoming.persist(w);
        self.ops.persist(w);
        w.put_f64(self.cpu_factor);
        w.put_f64(self.reliability_penalty);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Host {
            spec: HostSpec::restore(r)?,
            power: PowerState::restore(r)?,
            resident: Vec::restore(r)?,
            incoming: Vec::restore(r)?,
            ops: Vec::restore(r)?,
            cpu_factor: r.get_f64()?,
            reliability_penalty: r.get_f64()?,
        })
    }
}

/// The VM map is serialized as a vector sorted by [`VmId`] so the byte
/// stream is independent of `HashMap` iteration order. Restore re-keys it
/// and then runs the full structural [`Cluster::verify`] pass, so a
/// corrupt or hand-edited snapshot cannot smuggle in an inconsistent
/// world state.
impl Persist for Cluster {
    fn persist(&self, w: &mut Writer) {
        self.hosts.persist(w);
        // lint:allow(D001): collected then id-sorted before serializing
        let mut vms: Vec<&Vm> = self.vms.values().collect();
        vms.sort_by_key(|v| v.id);
        w.put_len(vms.len());
        // lint:allow(D001): iterates the sorted Vec above, not the map
        for v in vms {
            v.persist(w);
        }
        self.queue.persist(w);
        w.put_u64(self.next_vm_id);
        w.put_u64(self.next_op_seq);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let hosts: Vec<Host> = Vec::restore(r)?;
        for (i, h) in hosts.iter().enumerate() {
            if h.spec.id.raw() as usize != i {
                return Err(PersistError::Corrupt(format!(
                    "host {} out of id order (slot {i})",
                    h.spec.id
                )));
            }
        }
        let n = r.get_len()?;
        let mut vms = HashMap::with_capacity(n);
        for _ in 0..n {
            let v = Vm::restore(r)?;
            let id = v.id;
            if vms.insert(id, v).is_some() {
                return Err(PersistError::Corrupt(format!("duplicate {id} in snapshot")));
            }
        }
        let queue: Vec<VmId> = Vec::restore(r)?;
        let next_vm_id = r.get_u64()?;
        let next_op_seq = r.get_u64()?;
        // lint:allow(D001): existence check; any match fails regardless of order
        if let Some(v) = vms.keys().find(|v| v.raw() >= next_vm_id) {
            return Err(PersistError::Corrupt(format!(
                "{v} at or beyond next_vm_id {next_vm_id}"
            )));
        }
        let c = Cluster {
            hosts,
            vms,
            queue,
            next_vm_id,
            next_op_seq,
        };
        c.verify().map_err(PersistError::Corrupt)?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostClass;
    use crate::ids::JobId;
    use crate::units::Mem;
    use eards_sim::SimDuration;

    fn cluster(n: u32) -> Cluster {
        let specs = (0..n)
            .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
            .collect();
        Cluster::new(specs, PowerState::On)
    }

    fn job(id: u64, cpu: u32, secs: u64) -> Job {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(secs),
            1.5,
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn persist_round_trip_mid_lifecycle() {
        use eards_sim::{Reader, Writer};

        // Build a cluster with every kind of in-flight state: a running VM,
        // a migrating VM, a creating VM, a queued VM, a finished VM, a
        // booting host, and fault-layer multipliers.
        let mut c = cluster(4);
        let done = c.submit_job(job(1, 100, 10));
        c.start_creation(done, HostId(0), t(0), t(40));
        c.finish_creation(done, t(40));
        c.reallocate_host(HostId(0), t(40));
        c.finish_vm(done, t(60));

        let running = c.submit_job(job(2, 200, 1000));
        c.start_creation(running, HostId(0), t(60), t(100));
        c.finish_creation(running, t(100));
        c.reallocate_host(HostId(0), t(100));

        let migrating = c.submit_job(job(3, 100, 1000));
        c.start_creation(migrating, HostId(1), t(60), t(100));
        c.finish_creation(migrating, t(100));
        c.reallocate_host(HostId(1), t(100));
        c.start_migration(migrating, HostId(2), t(120), t(180));

        let creating = c.submit_job(job(4, 100, 500));
        c.start_creation(creating, HostId(2), t(120), t(160));
        let _queued = c.submit_job(job(5, 100, 500));

        c.begin_power_off(HostId(3), t(120));
        c.complete_power_off(HostId(3));
        c.begin_power_on(HostId(3), t(130));
        c.set_cpu_factor(HostId(1), 0.5);
        c.blacklist(HostId(2), 0.05);
        c.check_invariants();

        let mut w = Writer::new();
        c.persist(&mut w);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let restored = Cluster::restore(&mut r).unwrap();
        r.finish().unwrap();

        // The restored world re-serializes to the identical byte stream —
        // the snapshot is a fixed point.
        let mut w2 = Writer::new();
        restored.persist(&mut w2);
        assert_eq!(bytes, w2.into_bytes().unwrap());

        // Spot checks: placements, queue order, counters, fault multipliers.
        assert_eq!(restored.queue(), c.queue());
        assert_eq!(restored.num_vms(), c.num_vms());
        assert_eq!(restored.vm(running).alloc, c.vm(running).alloc);
        assert_eq!(
            restored.vm(migrating).state,
            VmState::Migrating { to: HostId(2) }
        );
        assert_eq!(restored.host(HostId(1)).cpu_factor, 0.5);
        assert!(restored.is_blacklisted(HostId(2)));
        assert!(matches!(
            restored.host(HostId(3)).power,
            PowerState::Booting { .. }
        ));

        // And the restored cluster keeps functioning: next op/vm ids
        // continue where the original left off.
        let mut restored = restored;
        let next = restored.submit_job(job(6, 100, 100));
        assert_eq!(next, VmId(c.num_vms() as u64));
        let seq = restored.start_creation(next, HostId(0), t(200), t(240));
        let next2 = c.submit_job(job(6, 100, 100));
        let seq2 = c.start_creation(next2, HostId(0), t(200), t(240));
        assert_eq!((next, seq), (next2, seq2));
    }

    #[test]
    fn restore_rejects_inconsistent_worlds() {
        use eards_sim::{Reader, Writer};

        let mut c = cluster(1);
        let vm = c.submit_job(job(1, 100, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        let mut w = Writer::new();
        c.persist(&mut w);
        let good = w.into_bytes().unwrap();
        assert!(Cluster::restore(&mut Reader::new(&good)).is_ok());

        // Truncation is an error, not a partial world.
        let mut r = Reader::new(&good[..good.len() - 4]);
        assert!(Cluster::restore(&mut r).is_err());
    }

    #[test]
    fn submit_queues_on_virtual_host() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 100, 100));
        assert_eq!(c.queue(), &[vm]);
        assert_eq!(c.vm(vm).state, VmState::Queued);
        assert_eq!(c.working_count(), 0);
        assert_eq!(c.online_count(), 2);
        c.check_invariants();
    }

    #[test]
    fn creation_lifecycle() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 200, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        assert!(c.queue().is_empty());
        assert_eq!(c.vm(vm).state, VmState::Creating);
        assert_eq!(c.host(HostId(0)).op_cpu_overhead(), CREATION_CPU_OVERHEAD);
        assert!(c.host(HostId(0)).is_working());
        c.reallocate_host(HostId(0), t(0));
        assert_eq!(c.vm(vm).alloc, 0.0, "creating VM consumes no CPU");
        // Host still draws op-overhead power.
        assert_eq!(c.cpu_used(HostId(0)), 50.0);
        c.check_invariants();

        c.finish_creation(vm, t(40));
        c.reallocate_host(HostId(0), t(40));
        assert_eq!(c.vm(vm).state, VmState::Running);
        assert_eq!(c.vm(vm).alloc, 200.0);
        assert_eq!(c.host(HostId(0)).op_cpu_overhead(), Cpu::ZERO);
        assert_eq!(c.cpu_used(HostId(0)), 200.0);
        c.check_invariants();
    }

    #[test]
    fn occupation_accounts_committed_vms() {
        let mut c = cluster(1);
        let a = c.submit_job(job(1, 200, 100));
        let b = c.submit_job(job(2, 100, 100));
        c.start_creation(a, HostId(0), t(0), t(40));
        assert!((c.occupation(HostId(0)) - 0.5).abs() < 1e-12);
        assert!((c.occupation_with(HostId(0), b) - 0.75).abs() < 1e-12);
        // occupation_with of an already-resident VM is idempotent.
        assert!((c.occupation_with(HostId(0), a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn can_place_rejects_overflow_and_off_hosts() {
        let mut c = cluster(2);
        let a = c.submit_job(job(1, 300, 100));
        let b = c.submit_job(job(2, 200, 100));
        c.start_creation(a, HostId(0), t(0), t(40));
        assert!(!c.can_place(HostId(0), b), "300+200 > 400 cpu");
        assert!(
            c.can_place_overcommitted(HostId(0), b),
            "relaxed check allows CPU overcommit"
        );
        assert!(c.can_place(HostId(1), b));
        // Turn host 1 off (via its legal transition chain).
        let mut c2 = cluster(1);
        let v = c2.submit_job(job(3, 100, 100));
        c2.begin_power_off(HostId(0), t(0));
        assert!(!c2.can_place(HostId(0), v));
        assert!(!c2.can_place_overcommitted(HostId(0), v));
    }

    #[test]
    fn memory_is_never_overcommitted() {
        let mut c = cluster(1);
        // Two 9-GiB VMs on a 16-GiB host: the second must be rejected even
        // by the relaxed check.
        let mk = |c: &mut Cluster, id: u64| {
            c.submit_job(Job::new(
                JobId(id),
                SimTime::ZERO,
                Cpu(100),
                Mem::gib(9),
                SimDuration::from_secs(100),
                1.5,
            ))
        };
        let a = mk(&mut c, 1);
        let b = mk(&mut c, 2);
        c.start_creation(a, HostId(0), t(0), t(40));
        assert!(!c.can_place_overcommitted(HostId(0), b));
        assert!(!c.can_place(HostId(0), b));
    }

    #[test]
    fn overcommitted_placement_shares_cpu() {
        let mut c = cluster(1);
        let a = c.submit_job(job(1, 300, 1000));
        let b = c.submit_job(job(2, 300, 1000));
        let h = HostId(0);
        c.start_creation(a, h, t(0), t(40));
        c.finish_creation(a, t(40));
        // A naive policy stacks b on the same node: 600% demand on 400%.
        c.start_creation(b, h, t(40), t(80));
        c.finish_creation(b, t(80));
        c.reallocate_host(h, t(80));
        assert!((c.occupation(h) - 1.5).abs() < 1e-12);
        assert_eq!(c.vm(a).alloc, 200.0, "fair share under contention");
        assert_eq!(c.vm(b).alloc, 200.0);
        c.check_invariants();
    }

    #[test]
    fn migration_reserves_on_destination() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 300, 1000));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(HostId(0), t(40));

        c.start_migration(vm, HostId(1), t(100), t(160));
        assert_eq!(c.vm(vm).state, VmState::Migrating { to: HostId(1) });
        // Reserved on both ends.
        assert!((c.occupation(HostId(0)) - 0.75).abs() < 1e-12);
        assert!((c.occupation(HostId(1)) - 0.75).abs() < 1e-12);
        // Both endpoints burn migration CPU.
        assert_eq!(c.host(HostId(0)).op_cpu_overhead(), MIGRATION_CPU_OVERHEAD);
        assert_eq!(c.host(HostId(1)).op_cpu_overhead(), MIGRATION_CPU_OVERHEAD);
        // The VM still executes on the source.
        c.reallocate_host(HostId(0), t(100));
        assert!(c.vm(vm).alloc > 0.0);
        c.check_invariants();

        c.finish_migration(vm, t(160));
        assert_eq!(c.vm(vm).host, Some(HostId(1)));
        assert_eq!(c.vm(vm).migrations, 1);
        assert!(c.host(HostId(0)).is_idle());
        assert_eq!(c.host(HostId(0)).op_cpu_overhead(), Cpu::ZERO);
        assert_eq!(c.host(HostId(1)).op_cpu_overhead(), Cpu::ZERO);
        c.check_invariants();
    }

    #[test]
    fn migration_target_memory_enforced() {
        let mut c = cluster(2);
        let mk = |c: &mut Cluster, id: u64| {
            c.submit_job(Job::new(
                JobId(id),
                SimTime::ZERO,
                Cpu(100),
                Mem::gib(9),
                SimDuration::from_secs(1000),
                1.5,
            ))
        };
        let a = mk(&mut c, 1);
        let b = mk(&mut c, 2);
        c.start_creation(a, HostId(0), t(0), t(40));
        c.finish_creation(a, t(40));
        c.start_creation(b, HostId(1), t(0), t(40));
        c.finish_creation(b, t(40));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.start_migration(a, HostId(1), t(50), t(110));
        }));
        assert!(r.is_err(), "migration must respect destination memory");
    }

    #[test]
    fn finish_vm_releases_resources() {
        let mut c = cluster(1);
        let vm = c.submit_job(job(1, 400, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(HostId(0), t(40));
        c.finish_vm(vm, t(140));
        assert_eq!(c.vm(vm).state, VmState::Finished);
        assert_eq!(c.vm(vm).completed_at, Some(t(140)));
        assert!(c.host(HostId(0)).is_idle());
        assert_eq!(c.occupation(HostId(0)), 0.0);
        assert_eq!(c.vm(vm).progress, 40_000.0, "100 s at 400 cpu");
        c.check_invariants();
    }

    #[test]
    fn contention_shares_cpu() {
        let mut c = cluster(1);
        let a = c.submit_job(job(1, 300, 1000));
        let b = c.submit_job(job(2, 200, 1000));
        // Force-place by escalating in two steps within capacity: 300+200
        // exceeds 400, so place b first, then a cannot... use two smaller.
        let h = HostId(0);
        c.start_creation(b, h, t(0), t(40));
        c.finish_creation(b, t(40));
        // a (300) no longer fits (200+300=500>400): capacity check works.
        assert!(!c.can_place(h, a));
        // Add a 200-cpu job instead: 200+200 = 400 exactly.
        let d = c.submit_job(job(3, 200, 1000));
        c.start_creation(d, h, t(40), t(80));
        c.finish_creation(d, t(80));
        c.reallocate_host(h, t(80));
        assert_eq!(c.vm(b).alloc, 200.0);
        assert_eq!(c.vm(d).alloc, 200.0);
        assert_eq!(c.cpu_used(h), 400.0);
    }

    #[test]
    fn ops_steal_cpu_from_vms() {
        let mut c = cluster(1);
        let a = c.submit_job(job(1, 400, 1000));
        let h = HostId(0);
        c.start_creation(a, h, t(0), t(40));
        c.finish_creation(a, t(40));
        // While a second VM is being created, dom0 overhead shrinks a's share.
        let b = c.submit_job(job(2, 50, 100)); // occupation fits? 400+50 > 400
        assert!(!c.can_place(h, b));
        // Instead start a checkpoint to create overhead.
        c.reallocate_host(h, t(40));
        assert_eq!(c.vm(a).alloc, 400.0);
        c.start_checkpoint(a, t(50), t(60));
        c.reallocate_host(h, t(50));
        assert_eq!(c.vm(a).alloc, 375.0, "capacity 400 - 25 checkpoint");
        c.finish_checkpoint(a, t(60));
        c.reallocate_host(h, t(60));
        assert_eq!(c.vm(a).alloc, 400.0);
        assert_eq!(c.vm(a).checkpoint, Some(c.vm(a).progress));
    }

    #[test]
    fn power_transitions() {
        let mut c = cluster(1);
        let h = HostId(0);
        let off_at = c.begin_power_off(h, t(0));
        assert_eq!(off_at, t(10));
        assert!(c.host(h).power.draws_power());
        c.complete_power_off(h);
        assert_eq!(c.host(h).power, PowerState::Off);
        assert_eq!(c.online_count(), 0);
        let ready = c.begin_power_on(h, t(100));
        assert_eq!(ready, t(190), "medium boot = 90 s");
        assert_eq!(c.online_count(), 1, "booting counts as online");
        c.complete_power_on(h);
        assert!(c.host(h).power.is_ready());
    }

    #[test]
    #[should_panic(expected = "cannot shut down a host with VMs")]
    fn power_off_busy_host_panics() {
        let mut c = cluster(1);
        let vm = c.submit_job(job(1, 100, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.begin_power_off(HostId(0), t(1));
    }

    #[test]
    fn host_failure_requeues_vms_with_checkpoint() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 100, 1000));
        let h = HostId(0);
        c.start_creation(vm, h, t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(h, t(40));
        c.start_checkpoint(vm, t(140), t(150));
        c.finish_checkpoint(vm, t(150));
        let ckpt = c.vm(vm).checkpoint.unwrap();
        assert!(ckpt > 0.0);

        // Run on, then crash at t=500: progress since the checkpoint is lost.
        c.touch_host(h, t(500));
        assert!(c.vm(vm).progress > ckpt);
        let displaced = c.fail_host(h, t(500));
        assert_eq!(displaced, vec![vm]);
        assert_eq!(c.vm(vm).state, VmState::Queued);
        assert_eq!(c.vm(vm).progress, ckpt);
        assert_eq!(c.host(h).power, PowerState::Failed);
        assert!(!c.host(h).power.draws_power());
        assert_eq!(c.queue(), &[vm]);
        c.check_invariants();

        c.repair_host(h);
        assert_eq!(c.host(h).power, PowerState::Off);
    }

    #[test]
    fn failure_during_migration_cleans_both_ends() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 200, 1000));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        c.start_migration(vm, HostId(1), t(100), t(160));
        // Destination dies mid-migration.
        let displaced = c.fail_host(HostId(1), t(130));
        assert_eq!(displaced, vec![vm]);
        assert_eq!(c.vm(vm).state, VmState::Queued);
        assert!(c.host(HostId(0)).is_idle(), "source residue cleaned");
        assert!(c.host(HostId(0)).ops.is_empty());
        c.check_invariants();
    }

    #[test]
    fn abort_creation_requeues_vm() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 200, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.abort_creation(vm, t(20));
        assert_eq!(c.vm(vm).state, VmState::Queued);
        assert_eq!(c.queue(), &[vm]);
        assert!(c.host(HostId(0)).is_idle(), "creation residue cleaned");
        c.check_invariants();
        // The VM can be retried on another host.
        c.start_creation(vm, HostId(1), t(30), t(70));
        c.finish_creation(vm, t(70));
        assert_eq!(c.vm(vm).state, VmState::Running);
        c.check_invariants();
    }

    #[test]
    fn abort_migration_keeps_vm_on_source() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 300, 1000));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(HostId(0), t(40));
        c.start_migration(vm, HostId(1), t(100), t(160));
        c.abort_migration(vm, t(130));
        assert_eq!(c.vm(vm).state, VmState::Running);
        assert_eq!(c.vm(vm).host, Some(HostId(0)));
        assert_eq!(c.vm(vm).migrations, 0, "aborted migration doesn't count");
        assert!(c.host(HostId(1)).is_idle(), "destination residue cleaned");
        assert_eq!(c.host(HostId(0)).op_cpu_overhead(), Cpu::ZERO);
        assert!(
            c.vm(vm).progress > 0.0,
            "progress banked for the time on the source"
        );
        c.check_invariants();
    }

    #[test]
    fn fail_boot_lands_in_failed_state() {
        let mut c = cluster(1);
        let h = HostId(0);
        c.begin_power_off(h, t(0));
        c.complete_power_off(h);
        c.begin_power_on(h, t(100));
        c.fail_boot(h);
        assert_eq!(c.host(h).power, PowerState::Failed);
        assert_eq!(c.online_count(), 0);
        c.repair_host(h);
        assert_eq!(c.host(h).power, PowerState::Off);
    }

    #[test]
    fn blacklist_lowers_effective_reliability() {
        let mut c = cluster(1);
        let h = HostId(0);
        assert_eq!(c.effective_reliability(h), 1.0);
        assert!(!c.is_blacklisted(h));
        c.blacklist(h, 0.05);
        assert!(c.is_blacklisted(h));
        assert!((c.effective_reliability(h) - 0.95).abs() < 1e-12);
        c.blacklist(h, 0.0);
        assert_eq!(c.effective_reliability(h), 1.0);
    }

    #[test]
    fn slowdown_factor_shrinks_capacity() {
        let mut c = cluster(1);
        let vm = c.submit_job(job(1, 400, 1000));
        let h = HostId(0);
        c.start_creation(vm, h, t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(h, t(40));
        assert_eq!(c.vm(vm).alloc, 400.0);
        c.set_cpu_factor(h, 0.5);
        c.reallocate_host(h, t(50));
        assert_eq!(c.vm(vm).alloc, 200.0, "half capacity during slowdown");
        c.set_cpu_factor(h, 1.0);
        c.reallocate_host(h, t(60));
        assert_eq!(c.vm(vm).alloc, 400.0);
        c.check_invariants();
    }

    #[test]
    fn verify_reports_corruption() {
        let mut c = cluster(2);
        let vm = c.submit_job(job(1, 100, 100));
        c.start_creation(vm, HostId(0), t(0), t(40));
        assert!(c.verify().is_ok());
        // Corrupt the state directly: duplicate residency.
        c.hosts[1].resident.push(vm);
        let err = c.verify().unwrap_err();
        assert!(err.contains("two hosts"), "got: {err}");
    }

    #[test]
    fn total_power_sums_draws() {
        use crate::power::CalibratedPowerModel;
        let mut c = cluster(2);
        let model = CalibratedPowerModel::paper_4way();
        assert_eq!(c.total_power(&model), 460.0, "two idle hosts");
        let vm = c.submit_job(job(1, 100, 1000));
        c.start_creation(vm, HostId(0), t(0), t(40));
        c.finish_creation(vm, t(40));
        c.reallocate_host(HostId(0), t(40));
        assert_eq!(c.total_power(&model), 259.0 + 230.0);
        // Off host draws nothing.
        c.begin_power_off(HostId(1), t(50));
        c.complete_power_off(HostId(1));
        assert_eq!(c.total_power(&model), 259.0);
    }
}
