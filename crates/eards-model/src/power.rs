//! Host power modeling.
//!
//! §IV-A of the paper measures a real 4-way Xen machine and finds that its
//! power draw does **not** depend on how many VMs run or how they are
//! configured — only on the *total CPU* they consume (Table I):
//!
//! | total CPU | 0% | 100% | 200% | 300% | 400% |
//! |-----------|----|------|------|------|------|
//! | power (W) | 230| 259  | 273  | 291  | 304  |
//!
//! [`CalibratedPowerModel`] interpolates piecewise-linearly between those
//! measured points, reproducing Table I by construction. The paper also
//! notes machines whose draw is constant regardless of load ("should be
//! avoided"); [`ConstantPowerModel`] models those for ablations, and
//! [`EnergyProportionalModel`] models the ideal of Barroso & Hölzle that
//! the paper cites as where the industry should go.

use crate::units::Cpu;

/// Maps a host's CPU consumption to instantaneous power draw.
pub trait PowerModel: Send + Sync {
    /// Power in Watts when the host is on and consuming `cpu_used` percent
    /// points out of `capacity`.
    fn power_watts(&self, cpu_used: f64, capacity: Cpu) -> f64;

    /// Power when on but idle.
    fn idle_watts(&self, capacity: Cpu) -> f64 {
        self.power_watts(0.0, capacity)
    }
}

/// Piecewise-linear model over measured `(total cpu %, watts)` points.
#[derive(Debug, Clone)]
pub struct CalibratedPowerModel {
    /// Calibration points, strictly increasing in CPU. The first point's
    /// CPU must be 0 (the idle measurement).
    points: Vec<(f64, f64)>,
    /// CPU capacity of the machine the calibration was taken on.
    calibrated_capacity: Cpu,
}

impl CalibratedPowerModel {
    /// Builds a model from calibration points.
    ///
    /// # Panics
    /// Panics if fewer than two points, points are not strictly increasing
    /// in CPU, or the first point is not at 0 CPU.
    pub fn new(points: Vec<(f64, f64)>, calibrated_capacity: Cpu) -> Self {
        assert!(points.len() >= 2, "need at least idle + one load point");
        assert_eq!(
            points.first().map(|p| p.0),
            Some(0.0),
            "first calibration point must be idle"
        );
        for (a, b) in points.iter().zip(points.iter().skip(1)) {
            assert!(a.0 < b.0, "calibration points must increase in CPU");
        }
        CalibratedPowerModel {
            points,
            calibrated_capacity,
        }
    }

    /// The paper's Table I calibration: 4-way node, 230 W idle → 304 W at
    /// 400% CPU.
    pub fn paper_4way() -> Self {
        CalibratedPowerModel::new(
            vec![
                (0.0, 230.0),
                (100.0, 259.0),
                (200.0, 273.0),
                (300.0, 291.0),
                (400.0, 304.0),
            ],
            Cpu::cores(4),
        )
    }

    /// The calibration points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl PowerModel for CalibratedPowerModel {
    fn power_watts(&self, cpu_used: f64, capacity: Cpu) -> f64 {
        // Rescale the CPU axis when the host's capacity differs from the
        // calibration machine's (e.g. an 8-way host stretches the curve).
        let scale = if self.calibrated_capacity.points() == 0 {
            1.0
        } else {
            capacity.as_f64() / self.calibrated_capacity.as_f64()
        };
        // `new` guarantees ≥2 points; the map_or fallbacks are unreachable
        // but keep every path total.
        let top = self.points.last().map_or(0.0, |p| p.0);
        let x = (cpu_used / scale.max(f64::MIN_POSITIVE)).clamp(0.0, top);
        let mut iter = self.points.windows(2);
        while let Some(&[(x0, y0), (x1, y1)]) = iter.next() {
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        self.points.last().map_or(0.0, |p| p.1)
    }
}

/// A machine whose draw never varies with load — the energy-inefficient
/// kind §IV-A says to avoid.
#[derive(Debug, Clone, Copy)]
pub struct ConstantPowerModel {
    /// Constant draw in Watts.
    pub watts: f64,
}

impl PowerModel for ConstantPowerModel {
    fn power_watts(&self, _cpu_used: f64, _capacity: Cpu) -> f64 {
        self.watts
    }
}

/// The energy-proportional ideal (Barroso & Hölzle, the paper's ref. 30):
/// zero idle draw, linear to peak.
#[derive(Debug, Clone, Copy)]
pub struct EnergyProportionalModel {
    /// Draw at 100% utilization.
    pub peak_watts: f64,
}

impl PowerModel for EnergyProportionalModel {
    fn power_watts(&self, cpu_used: f64, capacity: Cpu) -> f64 {
        let cap = capacity.as_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.peak_watts * (cpu_used / cap).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Cpu = Cpu(400);

    #[test]
    fn reproduces_table_1_exactly() {
        let m = CalibratedPowerModel::paper_4way();
        // Every measured configuration of Table I depends only on total CPU.
        assert_eq!(m.power_watts(100.0, CAP), 259.0); // 1 VCPU @ 100%
        assert_eq!(m.power_watts(200.0, CAP), 273.0); // 2×100 or 1×200
        assert_eq!(m.power_watts(300.0, CAP), 291.0); // 100+200 or 3×100
        assert_eq!(m.power_watts(400.0, CAP), 304.0); // 4×100
        assert_eq!(m.power_watts(0.0, CAP), 230.0); // 4 idle VMs
        assert_eq!(m.idle_watts(CAP), 230.0);
    }

    #[test]
    fn interpolates_between_points() {
        let m = CalibratedPowerModel::paper_4way();
        assert_eq!(m.power_watts(50.0, CAP), 244.5); // halfway 230→259
        assert_eq!(m.power_watts(350.0, CAP), 297.5); // halfway 291→304
    }

    #[test]
    fn clamps_beyond_calibration() {
        let m = CalibratedPowerModel::paper_4way();
        assert_eq!(m.power_watts(1000.0, CAP), 304.0);
        assert_eq!(m.power_watts(-5.0, CAP), 230.0);
    }

    #[test]
    fn rescales_for_other_capacities() {
        let m = CalibratedPowerModel::paper_4way();
        // An 8-way host at 200% CPU sits where the 4-way sat at 100%.
        assert_eq!(m.power_watts(200.0, Cpu::cores(8)), 259.0);
        // A 2-way host at full load (200%) sits at the curve's end.
        assert_eq!(m.power_watts(200.0, Cpu::cores(2)), 304.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = CalibratedPowerModel::paper_4way();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=80 {
            let p = m.power_watts(i as f64 * 5.0, CAP);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn rejects_missing_idle_point() {
        CalibratedPowerModel::new(vec![(10.0, 100.0), (20.0, 200.0)], CAP);
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn rejects_unsorted_points() {
        CalibratedPowerModel::new(vec![(0.0, 100.0), (50.0, 150.0), (30.0, 120.0)], CAP);
    }

    #[test]
    fn constant_model_ignores_load() {
        let m = ConstantPowerModel { watts: 250.0 };
        assert_eq!(m.power_watts(0.0, CAP), 250.0);
        assert_eq!(m.power_watts(400.0, CAP), 250.0);
    }

    #[test]
    fn proportional_model_is_linear() {
        let m = EnergyProportionalModel { peak_watts: 300.0 };
        assert_eq!(m.power_watts(0.0, CAP), 0.0);
        assert_eq!(m.power_watts(200.0, CAP), 150.0);
        assert_eq!(m.power_watts(400.0, CAP), 300.0);
        assert_eq!(m.power_watts(800.0, CAP), 300.0);
        assert_eq!(m.power_watts(100.0, Cpu(0)), 0.0);
    }
}

/// A DVFS-governed machine with discrete P-states.
///
/// §II of the paper: "DVFS is one of the techniques that can be used to
/// reduce the consumption of a server ... We rely on the node's underlying
/// technology which automatically changes the frequency according to the
/// load." The calibrated Table-I curve captures that governor *smoothed*;
/// this model exposes the steps explicitly: the governor picks the lowest
/// P-state whose capacity covers the demanded utilization, and the power
/// within a state is its idle floor plus a per-CPU slope.
#[derive(Debug, Clone)]
pub struct DvfsPowerModel {
    /// P-states as `(utilization ceiling ∈ (0, 1], idle watts, watts per
    /// 100% CPU)`, sorted ascending by ceiling; the last ceiling must be
    /// 1.0.
    states: Vec<(f64, f64, f64)>,
}

impl DvfsPowerModel {
    /// Builds a model from P-states.
    ///
    /// # Panics
    /// Panics if `states` is empty, ceilings are not strictly increasing,
    /// or the last ceiling is not 1.0.
    pub fn new(states: Vec<(f64, f64, f64)>) -> Self {
        assert!(!states.is_empty(), "need at least one P-state");
        for (a, b) in states.iter().zip(states.iter().skip(1)) {
            assert!(a.0 < b.0, "P-state ceilings must increase");
        }
        assert_eq!(
            states.last().map(|s| s.0),
            Some(1.0),
            "the top P-state must cover full utilization"
        );
        DvfsPowerModel { states }
    }

    /// A three-state governor roughly matching the Table-I machine's
    /// envelope: a deep powersave state up to 25% utilization, a mid state
    /// to 60%, and full frequency above.
    pub fn three_state_4way() -> Self {
        DvfsPowerModel::new(vec![
            (0.25, 228.0, 30.0),
            (0.60, 244.0, 15.0),
            (1.00, 252.0, 13.0),
        ])
    }
}

impl PowerModel for DvfsPowerModel {
    fn power_watts(&self, cpu_used: f64, capacity: Cpu) -> f64 {
        let cap = capacity.as_f64();
        if cap <= 0.0 {
            return self.states.first().map_or(0.0, |s| s.1);
        }
        let util = (cpu_used / cap).clamp(0.0, 1.0);
        // `new` guarantees the last ceiling is 1.0, so the find always
        // hits; the map_or fallback keeps the path total regardless.
        let (idle, slope) = self
            .states
            .iter()
            .find(|&&(ceil, _, _)| util <= ceil)
            .map_or((0.0, 0.0), |&(_, idle, slope)| (idle, slope));
        idle + slope * cpu_used / 100.0
    }
}

#[cfg(test)]
mod dvfs_tests {
    use super::*;

    const CAP: Cpu = Cpu(400);

    #[test]
    fn governor_steps_up_with_load() {
        let m = DvfsPowerModel::three_state_4way();
        // Powersave state at light load.
        assert_eq!(m.power_watts(0.0, CAP), 228.0);
        assert_eq!(m.power_watts(100.0, CAP), 228.0 + 30.0);
        // Mid state.
        assert_eq!(m.power_watts(200.0, CAP), 244.0 + 30.0);
        // Full frequency: 304 W, the Table-I peak.
        assert_eq!(m.power_watts(400.0, CAP), 252.0 + 52.0);
    }

    #[test]
    fn state_transitions_are_discontinuous_upward() {
        let m = DvfsPowerModel::three_state_4way();
        // Raising frequency at (nearly) the same load costs power: each
        // ceiling crossing jumps up.
        for boundary in [100.0, 240.0] {
            let below = m.power_watts(boundary, CAP);
            let above = m.power_watts(boundary + 1.0, CAP);
            assert!(
                above > below + 0.5,
                "no upward step at {boundary}: {below} → {above}"
            );
        }
    }

    #[test]
    fn envelope_tracks_the_calibrated_curve() {
        // The stepped model should stay within a few watts of the smooth
        // Table-I interpolation across the whole load range.
        let dvfs = DvfsPowerModel::three_state_4way();
        let cal = CalibratedPowerModel::paper_4way();
        for i in 0..=40 {
            let cpu = f64::from(i) * 10.0;
            let d = dvfs.power_watts(cpu, CAP);
            let c = cal.power_watts(cpu, CAP);
            assert!((d - c).abs() < 12.0, "at {cpu}: dvfs {d} vs calibrated {c}");
        }
    }

    #[test]
    #[should_panic(expected = "full utilization")]
    fn rejects_incomplete_coverage() {
        DvfsPowerModel::new(vec![(0.5, 200.0, 10.0)]);
    }

    #[test]
    fn zero_capacity_draws_powersave_idle() {
        let m = DvfsPowerModel::three_state_4way();
        assert_eq!(m.power_watts(100.0, Cpu(0)), 228.0);
    }
}
