//! # eards-model — the virtualized-datacenter model
//!
//! The world the simulation acts on, reproducing §IV of Goiri et al.
//! (CLUSTER 2010): physical hosts with power states and virtualization
//! overheads, VMs encapsulating HPC jobs, Xen-credit CPU sharing, and the
//! calibrated power model of Table I.
//!
//! * [`Cluster`] — the mutable world state: placements, the virtual-host
//!   queue, in-flight create/migrate/checkpoint operations, failures.
//! * [`Job`] / [`Vm`] — work and its encapsulation; progress accrues at
//!   the *allocated* CPU rate, so contention slows jobs and endangers
//!   deadlines.
//! * [`HostSpec`] / [`HostClass`] — the paper's fast/medium/slow node
//!   classes with their creation and migration costs.
//! * [`xen`] — weighted max–min (credit-scheduler) CPU allocation.
//! * [`PowerModel`] — Table I piecewise-linear calibration plus constant
//!   and energy-proportional variants for ablations.
//! * [`Policy`] — the interface every scheduling policy implements
//!   (`eards-policies` for the baselines, `eards-core` for the paper's
//!   score-based scheduler).

#![warn(missing_docs)]

mod cluster;
mod fault;
mod host;
mod ids;
mod job;
mod policy;
mod power;
mod shard;
mod units;
mod vm;
pub mod xen;

pub use cluster::{
    Cluster, Host, CHECKPOINT_CPU_OVERHEAD, CREATION_CPU_OVERHEAD, MIGRATION_CPU_OVERHEAD,
};
pub use fault::{FaultPlan, RackPlan, RecoveryPolicy, SlowdownPlan};
pub use host::{HostClass, HostSpec, InFlightOp, OpKind, PowerState};
pub use ids::{HostId, JobId, VmId};
pub use job::{Arch, Hypervisor, Job, Requirements};
pub use policy::{Action, DegradeStats, Policy, ScheduleContext, ScheduleReason};
pub use power::{
    CalibratedPowerModel, ConstantPowerModel, DvfsPowerModel, EnergyProportionalModel, PowerModel,
};
pub use shard::{ShardMap, ShardSpec};
pub use units::{Cpu, Mem, Resources};
pub use vm::{Vm, VmState, MIGRATION_SLOWDOWN};

// The snapshot codec, re-exported so policy implementations and the
// datacenter driver speak one `Persist` vocabulary without a direct
// `eards-sim` dependency at every use site.
pub use eards_sim::{Persist, PersistError, Reader, Writer};
