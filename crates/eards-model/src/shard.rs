//! Rack-aligned cluster sharding for the hierarchical solver.
//!
//! A [`ShardMap`] partitions the host-id space `0..num_hosts` into
//! contiguous, rack-aligned ranges. Shard boundaries never split a rack
//! (the consecutive-id racks of [`RackPlan`](crate::RackPlan)), so a
//! correlated rack outage stays inside one shard and the fault-domain
//! structure the paper's §III-A.6 penalty models is preserved by the
//! partition.
//!
//! The map is a pure function of `(num_hosts, rack_size, shards)` —
//! integer arithmetic only, no RNG — so it is deterministic across runs
//! and can be re-derived from the run configuration after a
//! snapshot/restore instead of being persisted wholesale. A `Persist`
//! impl exists anyway for callers that embed a map in their own state.

use eards_sim::{Persist, PersistError, Reader, Writer};

/// How a policy should shard the cluster: how many shards to aim for and
/// the rack granularity boundaries must respect.
///
/// `count` is a *request*: the realized map never has more shards than
/// racks (a rack is never split), so [`ShardMap::build`] clamps it to
/// `[1, num_racks]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Requested shard count (≥ 1).
    pub count: u32,
    /// Hosts per rack (consecutive ids; the last rack may be smaller).
    pub rack_size: u32,
}

impl ShardSpec {
    /// A spec with the default rack size of [`RackPlan`](crate::RackPlan).
    pub fn with_count(count: u32) -> ShardSpec {
        ShardSpec {
            count,
            rack_size: 8,
        }
    }
}

impl Persist for ShardSpec {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(self.count);
        w.put_u32(self.rack_size);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ShardSpec {
            count: r.get_u32()?,
            rack_size: r.get_u32()?,
        })
    }
}

/// A partition of `0..num_hosts` into contiguous rack-aligned ranges.
///
/// Internally a boundary vector `starts` with `starts[0] == 0`,
/// `starts.last() == num_hosts`, strictly increasing — shard `s` owns
/// hosts `starts[s]..starts[s + 1]`. Every host id belongs to exactly
/// one shard by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    starts: Vec<u32>,
}

impl ShardMap {
    /// The trivial single-shard map covering `0..num_hosts`.
    ///
    /// # Panics
    /// Panics if `num_hosts` is zero — an empty cluster has no partition.
    pub fn single(num_hosts: usize) -> ShardMap {
        ShardMap::build(num_hosts, 8, 1)
    }

    /// Partition `num_hosts` hosts into at most `shards` rack-aligned
    /// contiguous ranges.
    ///
    /// Racks are `rack_size` consecutive ids (the last may be smaller).
    /// The realized shard count is `shards` clamped to `[1, num_racks]`;
    /// shard `s` owns racks `⌊s·R/S⌋..⌊(s+1)·R/S⌋`, so shard sizes differ
    /// by at most one rack and the whole construction is deterministic
    /// integer math.
    ///
    /// # Panics
    /// Panics if `num_hosts` or `rack_size` is zero, or if `num_hosts`
    /// exceeds `u32::MAX`.
    pub fn build(num_hosts: usize, rack_size: u32, shards: u32) -> ShardMap {
        assert!(num_hosts > 0, "shard map over an empty cluster");
        assert!(rack_size > 0, "rack size must be positive");
        assert!(num_hosts <= u32::MAX as usize, "host count exceeds u32");
        let num_hosts = num_hosts as u32;
        let racks = num_hosts.div_ceil(rack_size);
        let s = shards.clamp(1, racks);
        let mut starts = Vec::with_capacity(s as usize + 1);
        for i in 0..s {
            // Rack-index boundary ⌊i·R/S⌋, converted to a host id.
            let rack = (u64::from(i) * u64::from(racks) / u64::from(s)) as u32;
            starts.push((rack * rack_size).min(num_hosts));
        }
        starts.push(num_hosts);
        let map = ShardMap { starts };
        debug_assert!(map.verify(num_hosts as usize).is_ok());
        map
    }

    /// Number of shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of hosts covered by the partition.
    pub fn num_hosts(&self) -> usize {
        // The boundary vector is never empty by construction.
        self.starts.last().copied().unwrap_or(0) as usize
    }

    /// The shard owning host `h`.
    ///
    /// # Panics
    /// Panics if `h` is outside `0..num_hosts`.
    pub fn shard_of(&self, h: usize) -> usize {
        assert!(h < self.num_hosts(), "host {h} outside the shard map");
        // First boundary strictly greater than h, minus one.
        self.starts.partition_point(|&s| s as usize <= h) - 1
    }

    /// The host-id range owned by shard `s`.
    pub fn hosts(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s] as usize..self.starts[s + 1] as usize
    }

    /// Check the partition invariants against a cluster of `num_hosts`
    /// hosts: boundaries strictly increasing, starting at 0, ending at
    /// `num_hosts`. Returns a human-readable description of the first
    /// violation, if any — the auditor surfaces it as a light-pass
    /// invariant message.
    pub fn verify(&self, num_hosts: usize) -> Result<(), String> {
        if self.starts.first() != Some(&0) {
            return Err("shard map does not start at host 0".into());
        }
        if self.num_hosts() != num_hosts {
            return Err(format!(
                "shard map covers {} hosts, cluster has {num_hosts}",
                self.num_hosts()
            ));
        }
        for (&a, &b) in self.starts.iter().zip(self.starts.iter().skip(1)) {
            if a >= b {
                return Err(format!("shard boundary {a} not increasing to {b}"));
            }
        }
        Ok(())
    }
}

impl Persist for ShardMap {
    fn persist(&self, w: &mut Writer) {
        w.put_seq(&self.starts);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let starts = r.get_seq::<u32>()?;
        if starts.len() < 2 {
            return Err(PersistError::Corrupt(
                "shard map needs at least two boundaries".into(),
            ));
        }
        let map = ShardMap { starts };
        map.verify(map.num_hosts()).map_err(PersistError::Corrupt)?;
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_covers_everything() {
        let m = ShardMap::single(13);
        assert_eq!(m.num_shards(), 1);
        assert_eq!(m.hosts(0), 0..13);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(12), 0);
    }

    #[test]
    fn boundaries_are_rack_aligned() {
        let m = ShardMap::build(100, 8, 4);
        assert_eq!(m.num_shards(), 4);
        for s in 0..m.num_shards() {
            // Every internal boundary is a multiple of the rack size.
            assert_eq!(m.hosts(s).start % 8, 0, "shard {s} splits a rack");
        }
        assert!(m.verify(100).is_ok());
    }

    #[test]
    fn shard_count_clamps_to_rack_count() {
        // 20 hosts at rack size 8 → 3 racks; asking for 16 shards gets 3.
        let m = ShardMap::build(20, 8, 16);
        assert_eq!(m.num_shards(), 3);
        assert_eq!(m.hosts(0), 0..8);
        assert_eq!(m.hosts(1), 8..16);
        assert_eq!(m.hosts(2), 16..20);
    }

    #[test]
    fn every_host_in_exactly_one_shard() {
        for &(n, rs, s) in &[(1usize, 1u32, 1u32), (7, 3, 2), (64, 8, 8), (1000, 8, 7)] {
            let m = ShardMap::build(n, rs, s);
            let mut seen = vec![0u32; n];
            for shard in 0..m.num_shards() {
                for h in m.hosts(shard) {
                    seen[h] += 1;
                    assert_eq!(m.shard_of(h), shard);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{n}/{rs}/{s} not a partition");
        }
    }

    #[test]
    fn map_round_trips_through_persist() {
        let m = ShardMap::build(1000, 8, 7);
        let mut w = Writer::default();
        m.persist(&mut w);
        let bytes = w.into_bytes().expect("no sequence overflows here");
        let mut r = Reader::new(&bytes);
        let back = ShardMap::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn restore_rejects_corrupt_boundaries() {
        let mut w = Writer::default();
        w.put_seq(&[0u32, 5, 3]);
        let bytes = w.into_bytes().expect("no sequence overflows here");
        let mut r = Reader::new(&bytes);
        assert!(ShardMap::restore(&mut r).is_err());
    }
}
