//! Jobs: the unit of work users submit.
//!
//! In the paper's proof of concept (§I, §V) every job is an HPC task that
//! runs inside one VM; its SLA is a completion deadline derived from the
//! user-estimated dedicated-machine runtime multiplied by a typology factor
//! between 1.2 and 2.

use eards_sim::{Persist, PersistError, Reader, SimDuration, SimTime, Writer};

use crate::ids::JobId;
use crate::units::{Cpu, Mem, Resources};

/// Instruction-set architecture of a host or job requirement (`P_req`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arch {
    /// 64-bit x86 (the common case).
    #[default]
    X86_64,
    /// 32-bit x86.
    X86,
    /// POWER.
    Ppc64,
}

/// Hypervisor running on a host, or required by a job image (`P_req`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hypervisor {
    /// Xen — the paper's platform (§IV).
    #[default]
    Xen,
    /// KVM.
    Kvm,
}

/// Hardware/software constraints a job places on candidate hosts.
///
/// `None` means "any". These feed the paper's `P_req` penalty (§III-A.1):
/// a host that cannot satisfy them gets an infinite score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Requirements {
    /// Required architecture, if any.
    pub arch: Option<Arch>,
    /// Required hypervisor, if any.
    pub hypervisor: Option<Hypervisor>,
    /// Minimum number of physical CPUs on the host.
    pub min_host_cpus: u32,
}

impl Requirements {
    /// A job that runs anywhere.
    pub const ANY: Requirements = Requirements {
        arch: None,
        hypervisor: None,
        min_host_cpus: 0,
    };
}

/// A job: arrival metadata, resource demand, and SLA.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Submission instant.
    pub submit: SimTime,
    /// CPU the job consumes when unconstrained (its VM's demand).
    pub cpu: Cpu,
    /// Memory its VM needs.
    pub mem: Mem,
    /// Actual runtime on a dedicated machine at full CPU (ground truth;
    /// drives the work integral and the deadline).
    pub dedicated: SimDuration,
    /// The *user-declared* runtime estimate — the `T_u(vm)` of §III-A.3.
    /// Grid users habitually overestimate; the scheduler only ever sees
    /// this value (e.g. for the migration remaining-time discount), never
    /// the ground truth.
    pub user_estimate: SimDuration,
    /// Deadline factor (1.2–2.0 by typology, §V): `T_dead = factor × T_u`.
    pub deadline_factor: f64,
    /// Hardware/software constraints.
    pub requirements: Requirements,
    /// Tolerance to host failures, `F_tol(vm) ∈ [0, 1]` (§III-A.6).
    pub fault_tolerance: f64,
}

impl Job {
    /// Builds a job with default requirements and no fault tolerance.
    pub fn new(
        id: JobId,
        submit: SimTime,
        cpu: Cpu,
        mem: Mem,
        dedicated: SimDuration,
        deadline_factor: f64,
    ) -> Self {
        assert!(
            deadline_factor >= 1.0,
            "a deadline below the dedicated runtime is unsatisfiable"
        );
        Job {
            id,
            submit,
            cpu,
            mem,
            dedicated,
            user_estimate: dedicated,
            deadline_factor,
            requirements: Requirements::ANY,
            fault_tolerance: 0.0,
        }
    }

    /// Sets a user runtime estimate different from the ground truth.
    pub fn with_estimate(mut self, estimate: SimDuration) -> Self {
        self.user_estimate = estimate;
        self
    }

    /// Resource bundle the job's VM requests.
    pub fn resources(&self) -> Resources {
        Resources::new(self.cpu, self.mem)
    }

    /// Total work to perform, in cpu%·seconds: running `dedicated` long at
    /// `cpu` demand. Progress accrues at the *allocated* CPU rate, so a
    /// contended VM takes proportionally longer.
    pub fn total_work(&self) -> f64 {
        self.dedicated.as_secs_f64() * self.cpu.as_f64()
    }

    /// The agreed deadline, relative to submission.
    pub fn deadline(&self) -> SimDuration {
        self.dedicated.mul_f64(self.deadline_factor)
    }

    /// Absolute deadline instant.
    pub fn deadline_at(&self) -> SimTime {
        self.submit + self.deadline()
    }
}

impl Persist for Arch {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            Arch::X86_64 => 0,
            Arch::X86 => 1,
            Arch::Ppc64 => 2,
        });
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(Arch::X86_64),
            1 => Ok(Arch::X86),
            2 => Ok(Arch::Ppc64),
            t => Err(PersistError::Corrupt(format!("bad Arch tag {t}"))),
        }
    }
}

impl Persist for Hypervisor {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            Hypervisor::Xen => 0,
            Hypervisor::Kvm => 1,
        });
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(Hypervisor::Xen),
            1 => Ok(Hypervisor::Kvm),
            t => Err(PersistError::Corrupt(format!("bad Hypervisor tag {t}"))),
        }
    }
}

impl Persist for Requirements {
    fn persist(&self, w: &mut Writer) {
        w.put_opt(&self.arch);
        w.put_opt(&self.hypervisor);
        w.put_u32(self.min_host_cpus);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Requirements {
            arch: r.get_opt()?,
            hypervisor: r.get_opt()?,
            min_host_cpus: r.get_u32()?,
        })
    }
}

impl Persist for Job {
    fn persist(&self, w: &mut Writer) {
        self.id.persist(w);
        self.submit.persist(w);
        self.cpu.persist(w);
        self.mem.persist(w);
        self.dedicated.persist(w);
        self.user_estimate.persist(w);
        w.put_f64(self.deadline_factor);
        self.requirements.persist(w);
        w.put_f64(self.fault_tolerance);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Job {
            id: JobId::restore(r)?,
            submit: SimTime::restore(r)?,
            cpu: Cpu::restore(r)?,
            mem: Mem::restore(r)?,
            dedicated: SimDuration::restore(r)?,
            user_estimate: SimDuration::restore(r)?,
            deadline_factor: r.get_f64()?,
            requirements: Requirements::restore(r)?,
            fault_tolerance: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(
            JobId(1),
            SimTime::from_secs(100),
            Cpu(200),
            Mem::gib(2),
            SimDuration::from_secs(6000), // 100 min dedicated
            1.5,
        )
    }

    #[test]
    fn deadline_follows_factor() {
        // §V example: 100 min at factor 1.5 ⇒ deadline 150 min.
        let j = job();
        assert_eq!(j.deadline(), SimDuration::from_secs(9000));
        assert_eq!(j.deadline_at(), SimTime::from_secs(9100));
    }

    #[test]
    fn total_work_scales_with_demand() {
        let j = job();
        assert_eq!(j.total_work(), 6000.0 * 200.0);
    }

    #[test]
    fn resources_bundle() {
        let j = job();
        assert_eq!(j.resources(), Resources::new(Cpu(200), Mem(2048)));
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn sub_unity_deadline_factor_rejected() {
        Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(100),
            Mem(512),
            SimDuration::from_secs(10),
            0.9,
        );
    }

    #[test]
    fn estimate_defaults_to_truth_and_is_overridable() {
        let j = job();
        assert_eq!(j.user_estimate, j.dedicated);
        let j = job().with_estimate(SimDuration::from_secs(9000));
        assert_eq!(j.user_estimate, SimDuration::from_secs(9000));
        // The deadline stays anchored to the dedicated ground truth (§V).
        assert_eq!(j.deadline(), SimDuration::from_secs(9000));
    }

    #[test]
    fn requirements_default_to_any() {
        assert_eq!(job().requirements, Requirements::ANY);
        assert_eq!(job().fault_tolerance, 0.0);
    }
}
