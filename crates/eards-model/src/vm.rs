//! Virtual machines: the scheduling unit.
//!
//! One VM encapsulates one job (the paper's HPC model). A VM moves through
//! a small state machine; while a creation, migration or checkpoint
//! operation is in flight the score-based scheduler pins it with an
//! infinite penalty (§III-A.3).

use eards_sim::{Persist, PersistError, Reader, SimTime, Writer};

use crate::ids::{HostId, VmId};
use crate::job::Job;
use crate::units::{Cpu, Mem, Resources};

/// Fraction of its allocation a VM actually converts into progress while
/// being live-migrated: page-dirtying tracking and the stop-and-copy
/// phase degrade the guest noticeably (Xen measurements put it around
/// 20–40% for memory-active workloads). This is what makes gratuitous
/// migration *cost* something — the effect behind the paper's Table V,
/// where over-aggressive consolidation loses both energy and SLA.
pub const MIGRATION_SLOWDOWN: f64 = 0.5;

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Waiting in the scheduler's virtual-host queue (not yet placed, or
    /// re-queued after a host failure).
    Queued,
    /// Being created on its host; the job has not started.
    Creating,
    /// Executing its job on its host.
    Running,
    /// Live-migrating to another host (still executing on the source).
    Migrating {
        /// Destination host (resources there are reserved).
        to: HostId,
    },
    /// Periodic checkpoint in progress (still executing).
    Checkpointing,
    /// Job finished; the VM has been destroyed.
    Finished,
}

impl VmState {
    /// True while any virtualization operation is in flight — the condition
    /// under which `P_virt = ∞` (§III-A.3).
    pub fn operation_in_progress(self) -> bool {
        matches!(
            self,
            VmState::Creating | VmState::Migrating { .. } | VmState::Checkpointing
        )
    }

    /// True if the job inside makes progress in this state.
    pub fn is_executing(self) -> bool {
        matches!(
            self,
            VmState::Running | VmState::Migrating { .. } | VmState::Checkpointing
        )
    }
}

/// A virtual machine and its execution bookkeeping.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Identifier.
    pub id: VmId,
    /// The job this VM executes.
    pub job: Job,
    /// Currently requested resources. Starts at the job's demand; the
    /// dynamic-SLA-enforcement extension (§III-A.5) escalates it when the
    /// SLA is being violated, so rescheduling finds the VM more room.
    pub requested: Resources,
    /// Lifecycle state.
    pub state: VmState,
    /// Host currently accounting this VM's resources (source host while
    /// migrating). `None` iff queued or finished.
    pub host: Option<HostId>,
    /// Work completed so far, in cpu%·seconds.
    pub progress: f64,
    /// Current CPU allocation granted by the host's credit scheduler
    /// (percent points; 0 while queued/creating).
    pub alloc: f64,
    /// Instant `progress` was last brought up to date.
    pub last_update: SimTime,
    /// When the VM finished creation and began executing, if it has.
    pub started_at: Option<SimTime>,
    /// When the job completed, if it has.
    pub completed_at: Option<SimTime>,
    /// Number of completed migrations.
    pub migrations: u32,
    /// Progress stored by the most recent completed checkpoint, if any
    /// (restored when the host fails, §III-C).
    pub checkpoint: Option<f64>,
}

impl Vm {
    /// Creates a queued VM for `job`.
    pub fn for_job(id: VmId, job: Job) -> Self {
        let requested = job.resources();
        let submit = job.submit;
        Vm {
            id,
            job,
            requested,
            state: VmState::Queued,
            host: None,
            progress: 0.0,
            alloc: 0.0,
            last_update: submit,
            started_at: None,
            completed_at: None,
            migrations: 0,
            checkpoint: None,
        }
    }

    /// Requested CPU (possibly escalated above the job demand).
    pub fn req_cpu(&self) -> Cpu {
        self.requested.cpu
    }

    /// Requested memory.
    pub fn req_mem(&self) -> Mem {
        self.requested.mem
    }

    /// The rate at which the VM converts CPU into progress right now:
    /// its allocation, capped at the job's demand, degraded while a live
    /// migration is in flight.
    pub fn progress_rate(&self) -> f64 {
        let rate = self.alloc.min(self.job.cpu.as_f64());
        if matches!(self.state, VmState::Migrating { .. }) {
            rate * MIGRATION_SLOWDOWN
        } else {
            rate
        }
    }

    /// Brings `progress` up to `now` at the current allocation rate.
    /// The effective progress rate is capped at the job's own demand: a VM
    /// cannot run faster than its job needs.
    pub fn advance_progress(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "progress update went backwards");
        if self.state.is_executing() {
            let dt = now.saturating_since(self.last_update).as_secs_f64();
            self.progress = (self.progress + self.progress_rate() * dt).min(self.job.total_work());
        }
        self.last_update = now;
    }

    /// Work still to do, in cpu%·seconds.
    pub fn remaining_work(&self) -> f64 {
        (self.job.total_work() - self.progress).max(0.0)
    }

    /// True once all work is done.
    pub fn work_complete(&self) -> bool {
        self.remaining_work() <= f64::EPSILON * self.job.total_work().max(1.0)
    }

    /// Seconds until completion at the current allocation, if the VM is
    /// executing and its allocation is positive.
    pub fn eta_secs(&self) -> Option<f64> {
        if !self.state.is_executing() {
            return None;
        }
        let rate = self.progress_rate();
        if rate <= 0.0 {
            return None;
        }
        Some(self.remaining_work() / rate)
    }

    /// The paper's `T_r(vm)` (§III-A.3): remaining execution time
    /// *according to the user estimate*, `T_u − t(vm)` — not the simulator's
    /// ground truth, because the scheduler only knows what the user declared.
    /// Clamped at zero once the estimate is exhausted.
    pub fn user_remaining_secs(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.job.submit).as_secs_f64();
        (self.job.user_estimate.as_secs_f64() - elapsed).max(0.0)
    }

    /// Projected SLA fulfilment ratio at `now` (§III-A.5): 1.0 when the
    /// projected completion meets the deadline, shrinking below 1 as the
    /// projection overshoots. Queued VMs project pessimistically from zero
    /// allocation, yielding fulfilment ≤ deadline/(deadline + nothing) — we
    /// treat "no allocation" as a projection of `2× deadline` (worst case
    /// of the satisfaction metric).
    pub fn sla_fulfillment(&self, now: SimTime) -> f64 {
        let deadline = self.job.deadline().as_secs_f64();
        if deadline <= 0.0 {
            return 0.0;
        }
        let elapsed = now.saturating_since(self.job.submit).as_secs_f64();
        let projected_total = match self.eta_secs() {
            Some(eta) => elapsed + eta,
            None => {
                if self.work_complete() {
                    elapsed
                } else {
                    // No progress possible right now: pessimistic projection.
                    2.0 * deadline.max(elapsed)
                }
            }
        };
        (deadline / projected_total).min(1.0)
    }
}

impl Persist for VmState {
    fn persist(&self, w: &mut Writer) {
        match self {
            VmState::Queued => w.put_u8(0),
            VmState::Creating => w.put_u8(1),
            VmState::Running => w.put_u8(2),
            VmState::Migrating { to } => {
                w.put_u8(3);
                to.persist(w);
            }
            VmState::Checkpointing => w.put_u8(4),
            VmState::Finished => w.put_u8(5),
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(VmState::Queued),
            1 => Ok(VmState::Creating),
            2 => Ok(VmState::Running),
            3 => Ok(VmState::Migrating {
                to: HostId::restore(r)?,
            }),
            4 => Ok(VmState::Checkpointing),
            5 => Ok(VmState::Finished),
            t => Err(PersistError::Corrupt(format!("bad VmState tag {t}"))),
        }
    }
}

impl Persist for Vm {
    fn persist(&self, w: &mut Writer) {
        self.id.persist(w);
        self.job.persist(w);
        self.requested.persist(w);
        self.state.persist(w);
        w.put_opt(&self.host);
        w.put_f64(self.progress);
        w.put_f64(self.alloc);
        self.last_update.persist(w);
        w.put_opt(&self.started_at);
        w.put_opt(&self.completed_at);
        w.put_u32(self.migrations);
        w.put_opt(&self.checkpoint);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Vm {
            id: VmId::restore(r)?,
            job: Job::restore(r)?,
            requested: Resources::restore(r)?,
            state: VmState::restore(r)?,
            host: r.get_opt()?,
            progress: r.get_f64()?,
            alloc: r.get_f64()?,
            last_update: SimTime::restore(r)?,
            started_at: r.get_opt()?,
            completed_at: r.get_opt()?,
            migrations: r.get_u32()?,
            checkpoint: r.get_opt()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;
    use eards_sim::SimDuration;

    fn vm() -> Vm {
        let job = Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(100),
            Mem(1024),
            SimDuration::from_secs(1000),
            1.5,
        );
        Vm::for_job(VmId(1), job)
    }

    #[test]
    fn new_vm_is_queued() {
        let v = vm();
        assert_eq!(v.state, VmState::Queued);
        assert!(!v.state.operation_in_progress());
        assert!(!v.state.is_executing());
        assert_eq!(v.remaining_work(), 100_000.0);
    }

    #[test]
    fn progress_accrues_at_alloc_rate() {
        let mut v = vm();
        v.state = VmState::Running;
        v.alloc = 50.0; // contended: half demand
        v.advance_progress(SimTime::from_secs(100));
        assert_eq!(v.progress, 5_000.0);
        // ETA at the current rate: 95_000 / 50 = 1900 s.
        assert_eq!(v.eta_secs(), Some(1900.0));
    }

    #[test]
    fn progress_rate_caps_at_job_demand() {
        let mut v = vm();
        v.state = VmState::Running;
        v.alloc = 400.0; // host granted more than the job can use
        v.advance_progress(SimTime::from_secs(10));
        assert_eq!(v.progress, 1_000.0);
    }

    #[test]
    fn no_progress_while_queued_or_creating() {
        let mut v = vm();
        v.alloc = 100.0;
        v.advance_progress(SimTime::from_secs(50));
        assert_eq!(v.progress, 0.0);
        v.state = VmState::Creating;
        v.advance_progress(SimTime::from_secs(80));
        assert_eq!(v.progress, 0.0);
        // ...but the clock is tracked so later accrual starts from here.
        v.state = VmState::Running;
        v.advance_progress(SimTime::from_secs(90));
        assert_eq!(v.progress, 1_000.0);
    }

    #[test]
    fn progress_continues_degraded_during_migration() {
        let mut v = vm();
        v.state = VmState::Migrating { to: HostId(2) };
        assert!(v.state.operation_in_progress());
        assert!(v.state.is_executing());
        v.alloc = 100.0;
        v.advance_progress(SimTime::from_secs(30));
        assert!(
            (v.progress - 3_000.0 * MIGRATION_SLOWDOWN).abs() < 1e-9,
            "live migration degrades the guest: {}",
            v.progress
        );
        assert_eq!(
            v.eta_secs(),
            Some(v.remaining_work() / (100.0 * MIGRATION_SLOWDOWN))
        );
    }

    #[test]
    fn work_completes_and_clamps() {
        let mut v = vm();
        v.state = VmState::Running;
        v.alloc = 100.0;
        v.advance_progress(SimTime::from_secs(2000)); // double the needed time
        assert!(v.work_complete());
        assert_eq!(v.progress, 100_000.0);
        assert_eq!(v.remaining_work(), 0.0);
    }

    #[test]
    fn user_remaining_follows_estimate_not_truth() {
        let mut v = vm();
        v.state = VmState::Running;
        v.alloc = 0.0; // no actual progress
        assert_eq!(v.user_remaining_secs(SimTime::from_secs(400)), 600.0);
        assert_eq!(v.user_remaining_secs(SimTime::from_secs(5000)), 0.0);
    }

    #[test]
    fn sla_fulfillment_bands() {
        let mut v = vm();
        // Queued with no allocation: pessimistic projection 2×deadline ⇒ 0.5.
        assert!((v.sla_fulfillment(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);

        // Running at full demand from t=0: projection = 1000 s < 1500 s
        // deadline ⇒ fulfilment 1.
        v.state = VmState::Running;
        v.alloc = 100.0;
        assert_eq!(v.sla_fulfillment(SimTime::ZERO), 1.0);

        // Running at half rate: projection 2000 s > 1500 ⇒ 0.75.
        v.alloc = 50.0;
        assert!((v.sla_fulfillment(SimTime::ZERO) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn eta_none_when_starved() {
        let mut v = vm();
        v.state = VmState::Running;
        v.alloc = 0.0;
        assert_eq!(v.eta_secs(), None);
    }
}
