//! The scheduling-policy interface.
//!
//! A policy looks at the cluster (including the virtual-host queue) and
//! returns placement actions. The driver validates and executes them,
//! charging the corresponding virtualization overheads. Node power
//! management is shared machinery (§III-C): the driver runs the λ
//! threshold controller and asks the policy only to *rank* candidates, so
//! the score-based scheduler can pick victims by matrix score while the
//! baselines use their own heuristics.

use eards_sim::{PersistError, Reader, SimTime, Writer};

use crate::cluster::Cluster;
use crate::ids::{HostId, VmId};

/// Why a scheduling round was triggered (§III-A: "a scheduling round is
/// started when a new VM enters the system, finishes its execution, a
/// violation in its SLA is detected, or the reliability of a node
/// changes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleReason {
    /// One or more VMs entered the queue.
    VmArrived,
    /// A VM finished and released resources.
    VmFinished,
    /// An SLA violation was detected.
    SlaViolation,
    /// A node changed state (booted, failed, repaired).
    HostStateChanged,
    /// Periodic re-evaluation tick.
    Periodic,
}

/// Context handed to the policy at each round.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext {
    /// Current simulated time.
    pub now: SimTime,
    /// What triggered the round.
    pub reason: ScheduleReason,
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Create a queued VM on a host.
    Create {
        /// The queued VM.
        vm: VmId,
        /// Target host.
        host: HostId,
    },
    /// Live-migrate a running VM to another host.
    Migrate {
        /// The running VM.
        vm: VmId,
        /// Destination host.
        to: HostId,
    },
}

/// Cumulative overload-control statistics a policy may expose (see
/// `eards-core`'s `ScoreScheduler` degradation ladder). All counters are
/// since construction/restore; work is in deterministic solver work
/// units, never wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DegradeStats {
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Rounds that ran at a rung above L0 (full quality).
    pub degraded_rounds: u64,
    /// Rounds whose solver work budget was exhausted mid-climb.
    pub exhausted_rounds: u64,
    /// Rounds executed at each ladder rung (index 0 = L0 … 3 = L3).
    pub rounds_at: [u64; 4],
    /// Largest single-round work spend observed.
    pub max_round_work: u64,
    /// Total work spent across all rounds.
    pub total_work: u64,
}

/// A VM scheduling policy.
pub trait Policy {
    /// Display name (used as the row label in the result tables).
    fn name(&self) -> String;

    /// Whether the policy ever emits [`Action::Migrate`]. Non-migrating
    /// policies match the paper's "static allocation" setting (§V-B).
    fn uses_migration(&self) -> bool {
        false
    }

    /// Produces placement actions for the current state. Implementations
    /// may only emit `Create` for queued VMs and `Migrate` for running
    /// VMs; the driver validates feasibility before applying.
    fn schedule(&mut self, cluster: &Cluster, ctx: &ScheduleContext) -> Vec<Action>;

    /// Orders idle-host candidates for power-off at instant `now`, best
    /// victim first. Default: as given.
    fn rank_power_off(
        &self,
        _cluster: &Cluster,
        _now: SimTime,
        candidates: &[HostId],
    ) -> Vec<HostId> {
        candidates.to_vec()
    }

    /// Orders offline-host candidates for power-on, best first.
    /// Default: as given. The paper selects by "reliability, boot time,
    /// etc." (§III-C); the score-based policy overrides this.
    fn rank_power_on(&self, _cluster: &Cluster, candidates: &[HostId]) -> Vec<HostId> {
        candidates.to_vec()
    }

    /// Writes the policy's canonical state into a snapshot. Stateless
    /// policies (and policies whose working set is pure scratch, rebuilt
    /// every round) keep the default no-op. Policies that carry decision
    /// state across rounds — an RNG, a rotation cursor — must override
    /// both hooks, or a restored run diverges from an uninterrupted one.
    fn persist_state(&self, _w: &mut Writer) {}

    /// Restores state written by [`Policy::persist_state`]. The default
    /// accepts the empty payload the default `persist_state` produced.
    fn restore_state(&mut self, _r: &mut Reader<'_>) -> Result<(), PersistError> {
        Ok(())
    }

    /// Overload-control statistics, for policies running a work-budgeted
    /// solver. `None` (the default) means the policy has no notion of
    /// degradation.
    fn degrade_stats(&self) -> Option<DegradeStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::host::{HostClass, HostSpec, PowerState};

    /// A do-nothing policy exercising the trait's defaults.
    struct Noop;
    impl Policy for Noop {
        fn name(&self) -> String {
            "noop".into()
        }
        fn schedule(&mut self, _: &Cluster, _: &ScheduleContext) -> Vec<Action> {
            Vec::new()
        }
    }

    #[test]
    fn default_rankings_preserve_order() {
        let c = Cluster::new(
            vec![HostSpec::standard(HostId(0), HostClass::Fast)],
            PowerState::On,
        );
        let p = Noop;
        let cands = [HostId(0)];
        assert_eq!(p.rank_power_off(&c, SimTime::ZERO, &cands), vec![HostId(0)]);
        assert_eq!(p.rank_power_on(&c, &cands), vec![HostId(0)]);
        assert!(!p.uses_migration());
    }
}
