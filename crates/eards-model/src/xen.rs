//! The Xen credit scheduler model: how a host divides its physical CPU
//! among competing VMs.
//!
//! The paper models "the Xen HyperScheduler ... including characteristics
//! like Virtual Machine Weights and Capabilities" (§IV). Xen's credit
//! scheduler is, at steady state, weighted proportional share with per-VM
//! caps: each VM receives CPU proportional to its weight, never more than
//! its cap or its demand, and CPU a VM cannot use is redistributed to the
//! others. That fixed point is exactly weighted max–min fairness, computed
//! here by iterative water-filling.

/// One VM's view of the CPU contention game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuContender {
    /// CPU the VM wants (percent points).
    pub demand: f64,
    /// Scheduling weight (Xen default 256).
    pub weight: f64,
    /// Upper bound on what it may receive (Xen "cap"; typically
    /// `vcpus × 100`).
    pub cap: f64,
}

impl CpuContender {
    /// A contender with the Xen default weight and a cap equal to demand.
    pub fn simple(demand: f64) -> Self {
        CpuContender {
            demand,
            weight: 256.0,
            cap: demand,
        }
    }

    fn bound(&self) -> f64 {
        self.demand.min(self.cap).max(0.0)
    }
}

/// Divides `capacity` CPU (percent points) among `contenders` by weighted
/// max–min fairness. Returns one allocation per contender, in order.
///
/// ```
/// use eards_model::xen::allocate_simple;
///
/// // A 4-way node (400%) with demands 100 + 400: the small VM is
/// // satisfied, the big one receives the surplus.
/// let alloc = allocate_simple(400.0, &[100.0, 400.0]);
/// assert_eq!(alloc, vec![100.0, 300.0]);
/// ```
///
/// Invariants (property-tested):
/// * `0 ≤ alloc[i] ≤ min(demand[i], cap[i])`
/// * `Σ alloc ≤ capacity`
/// * work-conserving: if `Σ min(demand, cap) ≥ capacity` then
///   `Σ alloc = capacity` (up to float tolerance)
/// * unconstrained case: if everything fits, everyone gets their bound.
pub fn allocate(capacity: f64, contenders: &[CpuContender]) -> Vec<f64> {
    let n = contenders.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || capacity <= 0.0 {
        return alloc;
    }

    let mut remaining = capacity;
    let mut active: Vec<usize> = (0..n).filter(|&i| contenders[i].bound() > 0.0).collect();

    // Water-filling: give each active contender its weighted share of the
    // remaining capacity; whoever's bound is below its share is satisfied
    // and leaves, freeing surplus for the rest. Each round retires at least
    // one contender, so this is O(n²) worst case — n is "VMs on one host",
    // a handful.
    while !active.is_empty() && remaining > 1e-9 {
        let total_weight: f64 = active.iter().map(|&i| contenders[i].weight).sum();
        if total_weight <= 0.0 {
            // Degenerate zero weights: split the remainder equally.
            let share = remaining / active.len() as f64;
            let mut progressed = false;
            let mut still = Vec::new();
            for &i in &active {
                let want = contenders[i].bound() - alloc[i];
                let give = want.min(share);
                alloc[i] += give;
                remaining -= give;
                if give < want {
                    still.push(i);
                } else {
                    progressed = true;
                }
            }
            if !progressed {
                break; // everyone absorbed a full share; remainder exhausted
            }
            active = still;
            continue;
        }

        let mut satisfied_any = false;
        let mut next_active = Vec::with_capacity(active.len());
        let round_remaining = remaining;
        for &i in &active {
            let share = round_remaining * contenders[i].weight / total_weight;
            let want = contenders[i].bound() - alloc[i];
            if want <= share + 1e-12 {
                alloc[i] += want;
                remaining -= want;
                satisfied_any = true;
            } else {
                next_active.push(i);
            }
        }
        if !satisfied_any {
            // Nobody is bound-limited: hand out exact weighted shares and stop.
            for &i in &next_active {
                let share = round_remaining * contenders[i].weight / total_weight;
                alloc[i] += share;
            }
            break;
        }
        active = next_active;
    }
    alloc
}

/// Convenience: allocation when all contenders use default weights and
/// caps equal to their demands (the common case in this model).
pub fn allocate_simple(capacity: f64, demands: &[f64]) -> Vec<f64> {
    let contenders: Vec<CpuContender> = demands.iter().map(|&d| CpuContender::simple(d)).collect();
    allocate(capacity, &contenders)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn uncontended_everyone_gets_demand() {
        let alloc = allocate_simple(400.0, &[100.0, 150.0, 50.0]);
        assert_eq!(alloc, vec![100.0, 150.0, 50.0]);
    }

    #[test]
    fn equal_weights_split_evenly_under_contention() {
        let alloc = allocate_simple(400.0, &[300.0, 300.0]);
        assert_close(alloc[0], 200.0);
        assert_close(alloc[1], 200.0);
    }

    #[test]
    fn small_demand_surplus_goes_to_big() {
        // 100-demand VM is satisfied; the rest goes to the 400-demand VM.
        let alloc = allocate_simple(400.0, &[100.0, 400.0]);
        assert_close(alloc[0], 100.0);
        assert_close(alloc[1], 300.0);
    }

    #[test]
    fn weights_bias_the_split() {
        let contenders = [
            CpuContender {
                demand: 400.0,
                weight: 512.0,
                cap: 400.0,
            },
            CpuContender {
                demand: 400.0,
                weight: 256.0,
                cap: 400.0,
            },
        ];
        let alloc = allocate(300.0, &contenders);
        assert_close(alloc[0], 200.0);
        assert_close(alloc[1], 100.0);
    }

    #[test]
    fn cap_limits_allocation() {
        let contenders = [
            CpuContender {
                demand: 400.0,
                weight: 256.0,
                cap: 100.0,
            },
            CpuContender {
                demand: 400.0,
                weight: 256.0,
                cap: 400.0,
            },
        ];
        let alloc = allocate(400.0, &contenders);
        assert_close(alloc[0], 100.0);
        assert_close(alloc[1], 300.0);
    }

    #[test]
    fn work_conserving_under_contention() {
        let alloc = allocate_simple(400.0, &[250.0, 250.0, 250.0]);
        assert_close(alloc.iter().sum::<f64>(), 400.0);
        for a in &alloc {
            assert_close(*a, 400.0 / 3.0);
        }
    }

    #[test]
    fn empty_and_zero_cases() {
        assert!(allocate_simple(400.0, &[]).is_empty());
        assert_eq!(allocate_simple(0.0, &[100.0]), vec![0.0]);
        assert_eq!(allocate_simple(400.0, &[0.0, 0.0]), vec![0.0, 0.0]);
        // Negative demand is treated as zero.
        let alloc = allocate(
            100.0,
            &[CpuContender {
                demand: -50.0,
                weight: 256.0,
                cap: 100.0,
            }],
        );
        assert_eq!(alloc, vec![0.0]);
    }

    #[test]
    fn zero_weight_contenders_share_equally() {
        let contenders = [
            CpuContender {
                demand: 100.0,
                weight: 0.0,
                cap: 100.0,
            },
            CpuContender {
                demand: 100.0,
                weight: 0.0,
                cap: 100.0,
            },
        ];
        let alloc = allocate(100.0, &contenders);
        assert_close(alloc[0], 50.0);
        assert_close(alloc[1], 50.0);
    }

    #[test]
    fn three_way_mixed_contention() {
        // capacity 400; demands 50, 200, 300 (total 550).
        // Round 1 fair share = 133.3 each: the 50 leaves satisfied.
        // Round 2: 350 left between two -> 175 each; 200-demand gets
        // 175 < 200? No wait: 175 < 200, so neither is satisfied...
        // max-min fixpoint: 50 | 175 | 175.
        let alloc = allocate_simple(400.0, &[50.0, 200.0, 300.0]);
        assert_close(alloc[0], 50.0);
        assert_close(alloc[1], 175.0);
        assert_close(alloc[2], 175.0);
        assert_close(alloc.iter().sum::<f64>(), 400.0);
    }
}
