//! Property tests for the datacenter model: credit-scheduler invariants,
//! power-model laws, occupation math, and a random-operation state
//! machine over the cluster.

use proptest::prelude::*;

use eards_model::xen::{allocate, CpuContender};
use eards_model::{
    CalibratedPowerModel, Cluster, Cpu, HostClass, HostId, HostSpec, Job, JobId, Mem, PowerModel,
    PowerState, Resources, ShardMap, VmState,
};
use eards_sim::{Persist, Reader, SimDuration, SimTime, Writer};

fn contender_strategy() -> impl Strategy<Value = CpuContender> {
    (0.0f64..500.0, 1.0f64..1024.0, 0.0f64..500.0).prop_map(|(demand, weight, cap)| CpuContender {
        demand,
        weight,
        cap,
    })
}

proptest! {
    /// Weighted max–min fairness invariants (§IV's Xen model).
    #[test]
    fn xen_allocation_invariants(
        capacity in 0.0f64..1600.0,
        contenders in proptest::collection::vec(contender_strategy(), 0..12),
    ) {
        let alloc = allocate(capacity, &contenders);
        prop_assert_eq!(alloc.len(), contenders.len());
        let mut total = 0.0;
        let mut total_bound = 0.0;
        for (a, c) in alloc.iter().zip(&contenders) {
            let bound = c.demand.min(c.cap).max(0.0);
            prop_assert!(*a >= -1e-9, "negative allocation {a}");
            prop_assert!(*a <= bound + 1e-6, "allocation {a} exceeds bound {bound}");
            total += a;
            total_bound += bound;
        }
        prop_assert!(total <= capacity + 1e-6, "over-allocated {total} > {capacity}");
        // Work conservation: all capacity used when demand saturates it.
        if total_bound >= capacity {
            prop_assert!((total - capacity).abs() < 1e-6,
                "not work conserving: {total} of {capacity} (bound {total_bound})");
        } else {
            // Unconstrained: everyone gets their bound.
            prop_assert!((total - total_bound).abs() < 1e-6);
        }
    }

    /// Adding a contender never increases anyone else's allocation.
    #[test]
    fn xen_allocation_is_monotone_in_contention(
        capacity in 100.0f64..800.0,
        base in proptest::collection::vec(contender_strategy(), 1..8),
        extra in contender_strategy(),
    ) {
        let before = allocate(capacity, &base);
        let mut bigger = base.clone();
        bigger.push(extra);
        let after = allocate(capacity, &bigger);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(*a <= b + 1e-6, "allocation rose from {b} to {a} under more contention");
        }
    }

    /// The calibrated power model is monotone and bounded by its endpoints.
    #[test]
    fn power_model_monotone_and_bounded(cpu_a in 0.0f64..500.0, cpu_b in 0.0f64..500.0) {
        let m = CalibratedPowerModel::paper_4way();
        let cap = Cpu::cores(4);
        let pa = m.power_watts(cpu_a, cap);
        let pb = m.power_watts(cpu_b, cap);
        prop_assert!((230.0..=304.0).contains(&pa));
        if cpu_a <= cpu_b {
            prop_assert!(pa <= pb + 1e-12);
        }
    }

    /// The shard map is a true partition of the host-id space, for every
    /// `(num_hosts, rack_size, shards)` triple: deterministic, every host
    /// in exactly one shard, internal boundaries rack-aligned, and stable
    /// through its `Persist` round trip (snapshot/restore cannot change
    /// which shard owns a host).
    #[test]
    fn shard_map_is_a_true_partition(
        num_hosts in 1usize..3000,
        rack_size in 1u32..33,
        shards in 0u32..64,
    ) {
        let m = ShardMap::build(num_hosts, rack_size, shards);
        // Pure integer function of its inputs: rebuilding is bit-equal.
        prop_assert_eq!(&ShardMap::build(num_hosts, rack_size, shards), &m);
        prop_assert!(m.verify(num_hosts).is_ok());
        let mut seen = vec![0u32; num_hosts];
        for s in 0..m.num_shards() {
            prop_assert_eq!(
                m.hosts(s).start % rack_size as usize, 0,
                "shard {} starts mid-rack at {}", s, m.hosts(s).start
            );
            for h in m.hosts(s) {
                seen[h] += 1;
                prop_assert_eq!(m.shard_of(h), s);
            }
        }
        prop_assert!(
            seen.iter().all(|&c| c == 1),
            "{}h/{}rs/{}s is not a partition: {:?}", num_hosts, rack_size, shards, seen
        );
        let mut w = Writer::default();
        m.persist(&mut w);
        let bytes = w.into_bytes().expect("boundary vector fits any length budget");
        let mut r = Reader::new(&bytes);
        let back = ShardMap::restore(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        prop_assert_eq!(back, m);
    }

    /// Occupation is the max over per-resource utilizations, scale-free.
    #[test]
    fn occupation_laws(cpu in 0u32..2000, mem in 0u32..40_000) {
        let cap = Resources::new(Cpu(400), Mem(16_384));
        let used = Resources::new(Cpu(cpu), Mem(mem));
        let occ = used.occupation_in(cap);
        let cpu_frac = f64::from(cpu) / 400.0;
        let mem_frac = f64::from(mem) / 16_384.0;
        prop_assert!((occ - cpu_frac.max(mem_frac)).abs() < 1e-12);
        prop_assert!(occ >= 0.0);
    }
}

/// Random-operation state machine over the cluster: any legal sequence of
/// submit / create / finish-create / migrate / finish-migrate / complete /
/// fail preserves the structural invariants.
#[derive(Debug, Clone)]
enum ClusterOp {
    Submit { cpu_idx: u8, host_bias: u8 },
    FinishCreation(u8),
    StartMigration { vm: u8, to: u8 },
    FinishMigration(u8),
    CompleteJob(u8),
    FailHost(u8),
    RepairAndBoot(u8),
}

fn cluster_op_strategy() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(c, h)| ClusterOp::Submit { cpu_idx: c, host_bias: h }),
        3 => any::<u8>().prop_map(ClusterOp::FinishCreation),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(vm, to)| ClusterOp::StartMigration { vm, to }),
        2 => any::<u8>().prop_map(ClusterOp::FinishMigration),
        2 => any::<u8>().prop_map(ClusterOp::CompleteJob),
        1 => any::<u8>().prop_map(ClusterOp::FailHost),
        1 => any::<u8>().prop_map(ClusterOp::RepairAndBoot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cluster_state_machine_preserves_invariants(
        ops in proptest::collection::vec(cluster_op_strategy(), 1..120),
    ) {
        const N: u32 = 5;
        let specs = (0..N)
            .map(|i| HostSpec::standard(HostId(i), HostClass::Medium))
            .collect();
        let mut cluster = Cluster::new(specs, PowerState::On);
        let mut clock = 0u64;
        let mut next_job = 0u64;

        for op in ops {
            clock += 10;
            let now = SimTime::from_secs(clock);
            let later = SimTime::from_secs(clock + 60);
            match op {
                ClusterOp::Submit { cpu_idx, host_bias } => {
                    let cpu = Cpu(100 * (1 + u32::from(cpu_idx % 4)));
                    let vm = cluster.submit_job(Job::new(
                        JobId(next_job), now, cpu, Mem::gib(1),
                        SimDuration::from_secs(600), 1.5,
                    ));
                    next_job += 1;
                    // Try to start creating it somewhere.
                    for k in 0..N {
                        let h = HostId((u32::from(host_bias) + k) % N);
                        if cluster.can_place_overcommitted(h, vm) {
                            cluster.start_creation(vm, h, now, later);
                            break;
                        }
                    }
                }
                ClusterOp::FinishCreation(pick) => {
                    let creating: Vec<_> = cluster.vms()
                        .filter(|v| v.state == VmState::Creating)
                        .map(|v| v.id)
                        .collect();
                    if !creating.is_empty() {
                        let vm = creating[usize::from(pick) % creating.len()];
                        cluster.finish_creation(vm, now);
                        let host = cluster.vm(vm).host.unwrap();
                        cluster.reallocate_host(host, now);
                    }
                }
                ClusterOp::StartMigration { vm, to } => {
                    let running: Vec<_> = cluster.vms()
                        .filter(|v| v.state == VmState::Running)
                        .map(|v| v.id)
                        .collect();
                    if running.is_empty() { continue; }
                    let vm = running[usize::from(vm) % running.len()];
                    let target = HostId(u32::from(to) % N);
                    if cluster.vm(vm).host != Some(target)
                        && cluster.can_place_overcommitted(target, vm)
                    {
                        cluster.start_migration(vm, target, now, later);
                    }
                }
                ClusterOp::FinishMigration(pick) => {
                    let migrating: Vec<_> = cluster.vms()
                        .filter(|v| matches!(v.state, VmState::Migrating { .. }))
                        .map(|v| v.id)
                        .collect();
                    if !migrating.is_empty() {
                        let vm = migrating[usize::from(pick) % migrating.len()];
                        cluster.finish_migration(vm, now);
                    }
                }
                ClusterOp::CompleteJob(pick) => {
                    let running: Vec<_> = cluster.vms()
                        .filter(|v| v.state == VmState::Running)
                        .map(|v| v.id)
                        .collect();
                    if !running.is_empty() {
                        let vm = running[usize::from(pick) % running.len()];
                        cluster.finish_vm(vm, now);
                    }
                }
                ClusterOp::FailHost(pick) => {
                    let h = HostId(u32::from(pick) % N);
                    if cluster.host(h).power == PowerState::On {
                        cluster.fail_host(h, now);
                    }
                }
                ClusterOp::RepairAndBoot(pick) => {
                    let h = HostId(u32::from(pick) % N);
                    if cluster.host(h).power == PowerState::Failed {
                        cluster.repair_host(h);
                        cluster.begin_power_on(h, now);
                        cluster.complete_power_on(h);
                    }
                }
            }
            cluster.check_invariants();

            // Memory is never overcommitted, whatever the sequence did.
            for i in 0..N {
                let h = HostId(i);
                let committed = cluster.committed(h);
                prop_assert!(
                    committed.mem <= cluster.host(h).spec.capacity().mem,
                    "memory overcommitted on {h}"
                );
            }
        }
    }
}
