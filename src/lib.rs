//! # EARDS — Energy-Aware scheduling in viRtualized DatacenterS
//!
//! A from-scratch Rust reproduction of Goiri, Julià, Nou, Berral, Guitart
//! & Torres, *"Energy-aware Scheduling in Virtualized Datacenters"*,
//! IEEE CLUSTER 2010 (DOI 10.1109/CLUSTER.2010.15).
//!
//! This facade crate re-exports the whole stack so applications (and the
//! `examples/` in this repository) can depend on one crate:
//!
//! * [`sim`] — deterministic discrete-event engine (the OMNeT++
//!   substitute of §IV);
//! * [`model`] — hosts, VMs, Xen-credit CPU sharing, the Table-I power
//!   model, failures;
//! * [`workload`] — synthetic Grid5000-like traces, SWF parsing, the
//!   Fig.-1 validation scenario;
//! * [`policies`] — the baselines: Random, Round-Robin, Backfilling,
//!   Dynamic Backfilling;
//! * [`core`] — the paper's contribution: the score-based scheduler
//!   (seven penalties + hill-climbing matrix solver);
//! * [`metrics`] — time-weighted statistics, the deadline-based SLA
//!   metric, run reports;
//! * [`datacenter`] — the end-to-end driver and parallel sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use eards::prelude::*;
//!
//! // A small datacenter, a day of synthetic grid load, the paper's
//! // score-based policy — and one call to simulate the whole thing.
//! let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
//! let trace = eards::workload::generate(
//!     &SynthConfig {
//!         span: SimDuration::from_hours(6),
//!         ..SynthConfig::grid5000_week()
//!     },
//!     42,
//! );
//! let policy = Box::new(ScoreScheduler::new(ScoreConfig::sb()));
//! let report = Runner::new(hosts, trace, policy, RunConfig::default()).run();
//! assert!(report.jobs_total > 0);
//! assert!(report.energy_kwh > 0.0);
//! ```

pub use eards_core as core;
pub use eards_datacenter as datacenter;
pub use eards_metrics as metrics;
pub use eards_model as model;
pub use eards_policies as policies;
pub use eards_sim as sim;
pub use eards_workload as workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use eards_core::{ScoreConfig, ScoreScheduler};
    pub use eards_datacenter::{
        lambda_grid, paper_datacenter, run_sweep, AuditorMode, RunConfig, Runner, SweepPoint,
    };
    pub use eards_metrics::{FaultStats, RunReport, Table};
    pub use eards_model::{
        Action, CalibratedPowerModel, Cluster, Cpu, FaultPlan, HostClass, HostId, HostSpec, Job,
        JobId, Mem, Policy, PowerModel, PowerState, RackPlan, RecoveryPolicy, ScheduleContext,
        ScheduleReason, SlowdownPlan, VmId, VmState,
    };
    pub use eards_policies::{
        BackfillingPolicy, DynamicBackfillingPolicy, RandomPolicy, RoundRobinPolicy,
    };
    pub use eards_sim::{SimDuration, SimRng, SimTime, Simulator};
    pub use eards_workload::{generate, parse_swf, SynthConfig, Trace};
}
