//! Hand-computed accounting checks: a single-job scenario whose timeline
//! can be written down exactly (creation jitter disabled), verifying the
//! driver's energy integration, SLA math and CPU-hour accounting against
//! pen-and-paper numbers.

use eards::prelude::*;

/// One 4-way medium node, one job: 400 cpu% for 100 s dedicated, deadline
/// factor 1.5 (⇒ 150 s), creation cost exactly 40 s (jitter disabled).
fn run_single_job() -> RunReport {
    let hosts = eards::datacenter::small_datacenter(1, HostClass::Medium);
    let job = Job::new(
        JobId(0),
        SimTime::ZERO,
        Cpu(400),
        Mem::gib(2),
        SimDuration::from_secs(100),
        1.5,
    );
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        creation_jitter_std: 0.0,
        record_power_series: true,
        ..RunConfig::default()
    };
    Runner::new(
        hosts,
        Trace::new(vec![job]),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run()
}

#[test]
fn single_job_timeline_and_energy_match_hand_calculation() {
    let report = run_single_job();
    assert_eq!(report.jobs_completed, 1);
    let job = &report.jobs[0];

    // Timeline: creation [0, 40) s, execution [40, 140] s (+1 ms guard).
    let completed = job.completed.expect("job finishes");
    let exec_secs = completed.saturating_since(SimTime::ZERO).as_secs_f64();
    assert!(
        (140.0..140.1).contains(&exec_secs),
        "completion at {exec_secs}"
    );

    // SLA: 140 s < 150 s deadline ⇒ S = 100, delay = 0.
    assert_eq!(job.satisfaction, 100.0);
    assert_eq!(job.delay_pct, 0.0);
    assert_eq!(report.satisfaction_pct, 100.0);

    // CPU hours: 400 cpu% held for 100 s ⇒ 4 · (100/3600) ≈ 0.1111.
    assert!(
        (job.cpu_hours - 4.0 * 100.0 / 3600.0).abs() < 0.001,
        "cpu_hours {}",
        job.cpu_hours
    );

    // Energy: 40 s at P(50) = 244.5 W (idle + creation overhead), then
    // 100 s at P(400) = 304 W. In kWh:
    let expected_kwh = (40.0 * 244.5 + 100.0 * 304.0) / 3600.0 / 1000.0;
    assert!(
        (report.energy_kwh - expected_kwh).abs() / expected_kwh < 0.01,
        "energy {} vs expected {}",
        report.energy_kwh,
        expected_kwh
    );

    // The power series shows exactly those two plateaus.
    let series = &report.power_watts;
    assert_eq!(series.value_at(SimTime::from_secs(10)), Some(244.5));
    assert_eq!(series.value_at(SimTime::from_secs(100)), Some(304.0));
}

#[test]
fn contended_job_misses_its_deadline_by_the_predicted_amount() {
    // Two 400-cpu jobs forced onto one node (Random overcommits): each
    // gets 200 cpu% ⇒ runs at half speed. Dedicated 100 s ⇒ ~200 s of
    // execution after a 40 s creation ⇒ ~240 s total vs a 150 s deadline.
    // S = 100·(1 − (240 − 150)/150) = 40%.
    let hosts = eards::datacenter::small_datacenter(1, HostClass::Medium);
    let mk = |id: u64| {
        Job::new(
            JobId(id),
            SimTime::ZERO,
            Cpu(400),
            Mem::gib(1),
            SimDuration::from_secs(100),
            1.5,
        )
    };
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        creation_jitter_std: 0.0,
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        Trace::new(vec![mk(0), mk(1)]),
        Box::new(RandomPolicy::new(1)),
        cfg,
    )
    .run();
    assert_eq!(report.jobs_completed, 2);
    for job in &report.jobs {
        // Both creations overlap; dom0 overhead (2 × 50 cpu) shaves the
        // VM shares during creation, so completion lands a bit past 240 s.
        assert!(
            (35.0..45.0).contains(&job.satisfaction),
            "S = {}",
            job.satisfaction
        );
        assert!(
            (55.0..70.0).contains(&job.delay_pct),
            "delay = {}",
            job.delay_pct
        );
    }
}

#[test]
fn idle_datacenter_draws_idle_power_only() {
    // No jobs, 2 nodes on, horizon forced by a single late tiny job.
    let hosts = eards::datacenter::small_datacenter(2, HostClass::Medium);
    let job = Job::new(
        JobId(0),
        SimTime::from_secs(3600),
        Cpu(0),
        Mem(256),
        SimDuration::from_secs(1),
        2.0,
    );
    let cfg = RunConfig {
        initial_on: 2,
        min_exec: 2,
        creation_jitter_std: 0.0,
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        Trace::new(vec![job]),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run();
    // One hour of two idle nodes: 2 × 230 W × 1 h = 0.46 kWh, plus the
    // ~40 s zero-work VM creation tail.
    assert!(
        (0.46..0.48).contains(&report.energy_kwh),
        "energy {}",
        report.energy_kwh
    );
}
