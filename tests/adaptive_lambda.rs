//! The adaptive-λ controller's feedback behaviour, isolated from the
//! ablation experiment.

use eards::datacenter::AdaptiveLambda;
use eards::prelude::*;

fn run_with_target(target: f64) -> RunReport {
    let hosts = eards::datacenter::small_datacenter(16, HostClass::Medium);
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        },
        17,
    );
    let cfg = RunConfig {
        adaptive_lambda: Some(AdaptiveLambda {
            target_satisfaction: target,
            ..AdaptiveLambda::default()
        }),
        ..RunConfig::default()
    };
    Runner::new(
        hosts,
        trace,
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        cfg,
    )
    .run()
}

#[test]
fn impossible_target_converges_to_the_conservative_bound() {
    // A 100% target can never be comfortably exceeded for long, so the
    // controller keeps relaxing λ_min toward its lower bound — maximum
    // capacity retention, highest energy.
    let strict = run_with_target(100.0);
    let loose = run_with_target(50.0);
    assert!(
        strict.energy_kwh > loose.energy_kwh,
        "a 100% target must hold more nodes online than a 50% target: {} vs {}",
        strict.energy_kwh,
        loose.energy_kwh
    );
    assert!(strict.satisfaction_pct >= loose.satisfaction_pct - 0.5);
}

#[test]
fn trivial_target_converges_to_the_aggressive_bound() {
    // A 50% target is always comfortably met, so the controller tightens
    // λ_min to its upper bound — close to the most aggressive static run.
    let adaptive = run_with_target(50.0);
    let hosts = eards::datacenter::small_datacenter(16, HostClass::Medium);
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        },
        17,
    );
    let static_aggressive = Runner::new(
        hosts,
        trace,
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        RunConfig::default().with_lambdas(80, 90),
    )
    .run();
    // Within 25% of the aggressive-static energy (the controller spends
    // the early trace converging).
    assert!(
        adaptive.energy_kwh <= static_aggressive.energy_kwh * 1.25,
        "adaptive {} vs static-aggressive {}",
        adaptive.energy_kwh,
        static_aggressive.energy_kwh
    );
}

#[test]
fn adaptive_lambda_never_crosses_lambda_max() {
    // λ_min is clamped strictly below λ_max even when the target is
    // trivially satisfied; the run completing (the on/off controller
    // requires λ_min < λ_max to make sense) is the regression signal.
    let report = run_with_target(10.0);
    assert_eq!(report.jobs_completed, report.jobs_total);
}
