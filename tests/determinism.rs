//! Reproducibility: a simulation is a pure function of (hosts, trace,
//! policy, config). Identical inputs must produce bit-identical reports —
//! the property every debugging and comparison workflow in this repo
//! relies on.

use eards::prelude::*;

fn trace() -> Trace {
    eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(6),
            ..SynthConfig::grid5000_week()
        },
        99,
    )
}

fn run_once(policy: Box<dyn Policy>, seed: u64) -> RunReport {
    let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
    let cfg = RunConfig {
        seed,
        ..RunConfig::default()
    };
    Runner::new(hosts, trace(), policy, cfg).run()
}

fn assert_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.energy_kwh.to_bits(), b.energy_kwh.to_bits(), "energy");
    assert_eq!(a.satisfaction_pct.to_bits(), b.satisfaction_pct.to_bits());
    assert_eq!(a.delay_pct.to_bits(), b.delay_pct.to_bits());
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.creations, b.creations);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.avg_working_nodes.to_bits(), b.avg_working_nodes.to_bits());
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.job_id, y.job_id);
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.satisfaction.to_bits(), y.satisfaction.to_bits());
    }
}

#[test]
fn score_scheduler_runs_are_reproducible() {
    let a = run_once(Box::new(ScoreScheduler::new(ScoreConfig::sb())), 42);
    let b = run_once(Box::new(ScoreScheduler::new(ScoreConfig::sb())), 42);
    assert_identical(&a, &b);
}

#[test]
fn random_policy_runs_are_reproducible_given_seeds() {
    let a = run_once(Box::new(RandomPolicy::new(5)), 42);
    let b = run_once(Box::new(RandomPolicy::new(5)), 42);
    assert_identical(&a, &b);
}

#[test]
fn different_driver_seeds_change_op_jitter_but_not_accounting() {
    let a = run_once(Box::new(BackfillingPolicy::new()), 1);
    let b = run_once(Box::new(BackfillingPolicy::new()), 2);
    // Same workload, same policy: the job population is identical...
    assert_eq!(a.jobs_total, b.jobs_total);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    // ...but creation-duration jitter differs, so energies drift slightly.
    assert!(
        (a.energy_kwh - b.energy_kwh).abs() / a.energy_kwh < 0.05,
        "seed should only perturb, not transform: {} vs {}",
        a.energy_kwh,
        b.energy_kwh
    );
}

#[test]
fn failure_injection_is_reproducible() {
    let mut hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
    for h in hosts.iter_mut().skip(5) {
        h.reliability = 0.95;
    }
    let cfg = RunConfig::default().with_faults(FaultPlan::crashes());
    let run = || {
        Runner::new(
            hosts.clone(),
            trace(),
            Box::new(ScoreScheduler::new(ScoreConfig::full())),
            cfg.clone(),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.host_failures, b.host_failures);
    assert_eq!(a.vms_displaced, b.vms_displaced);
    assert_identical(&a, &b);
}
