//! Audit-log consistency: the recorded timeline must obey the lifecycle
//! protocol for every VM and host, and agree with the aggregate report.

use std::collections::HashMap;

use eards::datacenter::{AuditEvent, AuditKind};
use eards::prelude::*;

fn audited_run(seed: u64, migration: bool) -> (RunReport, Vec<AuditEvent>) {
    let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(6),
            ..SynthConfig::grid5000_week()
        },
        seed,
    );
    let cfg = RunConfig {
        audit: true,
        ..RunConfig::default()
    };
    let policy: Box<dyn Policy> = if migration {
        Box::new(ScoreScheduler::new(ScoreConfig::sb()))
    } else {
        Box::new(BackfillingPolicy::new())
    };
    Runner::new(hosts, trace, policy, cfg).run_audited()
}

#[test]
fn log_is_time_ordered_and_counts_match_report() {
    let (report, audit) = audited_run(5, true);
    assert!(!audit.is_empty());
    for w in audit.windows(2) {
        assert!(w[0].at <= w[1].at, "audit log out of order");
    }
    let count = |f: fn(&AuditKind) -> bool| audit.iter().filter(|e| f(&e.kind)).count() as u64;
    assert_eq!(
        count(|k| matches!(k, AuditKind::JobArrived { .. })),
        report.jobs_total
    );
    assert_eq!(
        count(|k| matches!(k, AuditKind::CreationStarted { .. })),
        report.creations
    );
    assert_eq!(
        count(|k| matches!(k, AuditKind::MigrationStarted { .. })),
        report.migrations
    );
    assert_eq!(
        count(|k| matches!(k, AuditKind::JobCompleted { .. })),
        report.jobs_completed
    );
}

#[test]
fn every_vm_follows_the_lifecycle_protocol() {
    let (_, audit) = audited_run(6, true);

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum S {
        Queued,
        Creating,
        Running,
        Migrating,
        Done,
    }
    let mut state: HashMap<u64, S> = HashMap::new();
    for e in &audit {
        match &e.kind {
            AuditKind::JobArrived { vm } => {
                assert!(
                    state.insert(vm.raw(), S::Queued).is_none(),
                    "{vm} arrived twice"
                );
            }
            AuditKind::CreationStarted { vm, .. } => {
                let s = state.get_mut(&vm.raw()).expect("created before arrival");
                assert_eq!(*s, S::Queued, "{vm} created while {s:?}");
                *s = S::Creating;
            }
            AuditKind::VmStarted { vm, .. } => {
                let s = state.get_mut(&vm.raw()).expect("started before arrival");
                assert_eq!(*s, S::Creating, "{vm} started while {s:?}");
                *s = S::Running;
            }
            AuditKind::MigrationStarted { vm, from, to } => {
                assert_ne!(from, to);
                let s = state.get_mut(&vm.raw()).expect("migrated before arrival");
                assert_eq!(*s, S::Running, "{vm} migrated while {s:?}");
                *s = S::Migrating;
            }
            AuditKind::MigrationFinished { vm, .. } => {
                let s = state
                    .get_mut(&vm.raw())
                    .expect("finished unknown migration");
                assert_eq!(*s, S::Migrating, "{vm} finished migration while {s:?}");
                *s = S::Running;
            }
            AuditKind::JobCompleted { vm, satisfaction } => {
                assert!((0.0..=100.0).contains(satisfaction));
                let s = state.get_mut(&vm.raw()).expect("completed before arrival");
                assert_eq!(*s, S::Running, "{vm} completed while {s:?}");
                *s = S::Done;
            }
            _ => {}
        }
    }
    // Every tracked VM either finished or is mid-flight at the horizon.
    for (vm, s) in &state {
        assert!(
            matches!(
                s,
                S::Done | S::Queued | S::Creating | S::Running | S::Migrating
            ),
            "vm{vm} ended in {s:?}"
        );
    }
}

#[test]
fn host_power_transitions_alternate() {
    let (_, audit) = audited_run(7, true);
    // Per host: PoweringOn must be followed (eventually) by On before the
    // next PoweringOn; PoweringOff only after being On.
    let mut on: HashMap<u32, bool> = HashMap::new(); // currently online?
    let mut booting: HashMap<u32, bool> = HashMap::new();
    for e in &audit {
        match &e.kind {
            AuditKind::HostPoweringOn { host } => {
                assert!(
                    !on.get(&host.raw()).copied().unwrap_or(false),
                    "{host} booted while on"
                );
                assert!(
                    !booting.get(&host.raw()).copied().unwrap_or(false),
                    "{host} booted while booting"
                );
                booting.insert(host.raw(), true);
            }
            AuditKind::HostOn { host } => {
                assert!(
                    booting.remove(&host.raw()).unwrap_or(false)
                        || !on.get(&host.raw()).copied().unwrap_or(false),
                    "{host} came up without booting"
                );
                on.insert(host.raw(), true);
            }
            AuditKind::HostPoweringOff { host } => {
                assert!(
                    on.insert(host.raw(), false).unwrap_or(false)
                        // initial_on hosts were never logged as booting
                        || !booting.contains_key(&host.raw()),
                    "{host} shut down while off"
                );
                on.insert(host.raw(), false);
            }
            _ => {}
        }
    }
}

#[test]
fn audit_disabled_by_default_costs_nothing() {
    let hosts = eards::datacenter::small_datacenter(4, HostClass::Medium);
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(2),
            ..SynthConfig::grid5000_week()
        },
        9,
    );
    let (report, audit) = Runner::new(
        hosts,
        trace,
        Box::new(BackfillingPolicy::new()),
        RunConfig::default(),
    )
    .run_audited();
    assert!(audit.is_empty(), "audit must be opt-in");
    assert!(report.jobs_total > 0);
}
