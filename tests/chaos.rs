//! Chaos-engine guarantees: reproducible fault schedules, retry/backoff
//! recovery, flapping-host blacklisting, zero-cost-when-disabled, and the
//! invariant auditor staying clean under arbitrary fault plans.

use proptest::prelude::*;

use eards::datacenter::{render_log, AuditEvent, AuditKind};
use eards::prelude::*;

fn trace(hours: u64, seed: u64) -> Trace {
    eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(hours),
            ..SynthConfig::grid5000_week()
        },
        seed,
    )
}

fn chaos_run(
    policy: Box<dyn Policy>,
    plan: FaultPlan,
    hours: u64,
    audit: bool,
) -> (RunReport, Vec<AuditEvent>) {
    let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
    let cfg = RunConfig {
        audit,
        ..RunConfig::default()
    }
    .with_faults(plan);
    Runner::new(hosts, trace(hours, 42), policy, cfg).run_audited()
}

#[test]
fn same_plan_seed_gives_bit_identical_audit_logs() {
    let plan = FaultPlan::chaos(1.5).with_seed(9);
    let run = || {
        chaos_run(
            Box::new(ScoreScheduler::new(ScoreConfig::full())),
            plan.clone(),
            6,
            true,
        )
    };
    let (ra, la) = run();
    let (rb, lb) = run();
    assert_eq!(render_log(&la), render_log(&lb));
    assert_eq!(ra.energy_kwh.to_bits(), rb.energy_kwh.to_bits());
    assert_eq!(ra.faults, rb.faults);
    assert!(
        ra.host_failures + ra.faults.creation_failures > 0,
        "chaos x1.5 must fire something in 6 hours"
    );
}

#[test]
fn fault_schedule_is_per_host_across_policies() {
    // With every host pinned on (initial_on = min_exec = all, λ_min 0 via
    // min_exec), the slowdown schedule depends only on the plan seed —
    // not on the policy. Different policies must see identical episodes.
    let mut plan = FaultPlan::none();
    plan.slowdown = Some(SlowdownPlan {
        mtbe: SimDuration::from_hours(2),
        ..SlowdownPlan::default()
    });
    plan.seed = Some(5);
    let run = |policy: Box<dyn Policy>| {
        let hosts = eards::datacenter::small_datacenter(6, HostClass::Medium);
        let cfg = RunConfig {
            audit: true,
            initial_on: 6,
            min_exec: 6,
            ..RunConfig::default()
        }
        .with_faults(plan.clone());
        let (_, log) = Runner::new(hosts, trace(8, 42), policy, cfg).run_audited();
        log.into_iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    AuditKind::SlowdownStarted { .. } | AuditKind::SlowdownEnded { .. }
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run(Box::new(BackfillingPolicy::new()));
    let b = run(Box::new(ScoreScheduler::new(ScoreConfig::sb())));
    assert!(!a.is_empty(), "2h MTBE over 8h on 6 hosts must fire");
    // The runs end at different instants (each stops when its last job
    // completes), so compare the schedules over their common span.
    let n = a.len().min(b.len());
    assert!(n > 0);
    assert_eq!(&a[..n], &b[..n], "slowdown schedule leaked policy state");
}

#[test]
fn creation_failures_recover_via_backoff() {
    let mut plan = FaultPlan::none();
    plan.creation_failure_prob = 0.5;
    let (report, log) = chaos_run(Box::new(BackfillingPolicy::new()), plan, 6, true);
    assert!(
        report.faults.creation_failures > 0,
        "p=0.5 must doom some creations"
    );
    assert!(report.faults.retries_delayed > 0, "failures must back off");
    assert!(report.faults.recoveries > 0, "failed VMs must come back");
    assert!(report.faults.mean_recovery_secs > 0.0);
    assert!(report.faults.max_recovery_secs >= report.faults.mean_recovery_secs);
    assert_eq!(report.faults.invariant_violations, 0);
    // Despite every other creation failing, the system digests the load.
    assert!(
        report.jobs_completed as f64 >= 0.9 * report.jobs_total as f64,
        "{}/{}",
        report.jobs_completed,
        report.jobs_total
    );
    assert!(log
        .iter()
        .any(|e| matches!(e.kind, AuditKind::CreationFailed { .. })));
}

#[test]
fn flapping_hosts_get_blacklisted() {
    let mut plan = FaultPlan::crashes();
    plan.crash_mttf = Some(SimDuration::from_mins(40)); // flaps constantly
    plan.mttr = SimDuration::from_mins(10);
    let (report, log) = chaos_run(Box::new(BackfillingPolicy::new()), plan, 8, true);
    assert!(
        report.faults.hosts_blacklisted > 0,
        "40 min MTTF over 8 h must trip the 3-crash blacklist \
         ({} crashes seen)",
        report.host_failures
    );
    assert!(log
        .iter()
        .any(|e| matches!(e.kind, AuditKind::HostBlacklisted { .. })));
    assert_eq!(report.faults.invariant_violations, 0);
}

#[test]
fn disabled_faults_and_auditor_cost_nothing() {
    // The fault layer must be invisible when off: a default run, an
    // explicit FaultPlan::none() run and an auditor-off run all produce
    // bit-identical reports.
    let run = |cfg: RunConfig| {
        let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);
        Runner::new(
            hosts,
            trace(6, 42),
            Box::new(ScoreScheduler::new(ScoreConfig::sb())),
            cfg,
        )
        .run()
    };
    let base = run(RunConfig::default());
    let none = run(RunConfig::default().with_faults(FaultPlan::none()));
    let off = run(RunConfig::default().with_auditor(AuditorMode::Off));
    for other in [&none, &off] {
        assert_eq!(base.energy_kwh.to_bits(), other.energy_kwh.to_bits());
        assert_eq!(
            base.satisfaction_pct.to_bits(),
            other.satisfaction_pct.to_bits()
        );
        assert_eq!(base.migrations, other.migrations);
        assert_eq!(base.creations, other.creations);
        assert_eq!(base.jobs_completed, other.jobs_completed);
    }
    // The always-on auditor actually audited; off mode did not.
    assert!(base.faults.invariant_checks > 0);
    assert_eq!(base.faults.invariant_violations, 0);
    assert_eq!(off.faults.invariant_checks, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No VM is ever lost or double-placed under arbitrary fault plans:
    /// the always-on auditor must stay clean and every admitted job must
    /// be accounted for in the report.
    #[test]
    fn arbitrary_fault_plans_never_lose_vms(
        intensity in 0.0f64..3.0,
        boot_p in 0.0f64..0.4,
        create_p in 0.0f64..0.4,
        migrate_p in 0.0f64..0.4,
        plan_seed in any::<u64>(),
        policy_idx in any::<u8>(),
    ) {
        let mut plan = FaultPlan::chaos(intensity);
        plan.boot_failure_prob = boot_p;
        plan.creation_failure_prob = create_p;
        plan.migration_abort_prob = migrate_p;
        plan.seed = Some(plan_seed);
        let policy: Box<dyn Policy> = match policy_idx % 3 {
            0 => Box::new(BackfillingPolicy::new()),
            1 => Box::new(DynamicBackfillingPolicy::new()),
            _ => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        };
        let (report, _) = chaos_run(policy, plan, 3, false);
        prop_assert!(report.faults.invariant_checks > 0, "auditor never ran");
        prop_assert_eq!(report.faults.invariant_violations, 0);
        // Conservation at the report level: every admitted job is either
        // completed or reported unfinished — none vanish, none duplicate.
        prop_assert_eq!(report.jobs.len() as u64, report.jobs_total);
        let done = report.jobs.iter().filter(|j| j.completed.is_some()).count() as u64;
        prop_assert_eq!(done, report.jobs_completed);
    }
}
