//! Driver edge-case scenarios: cold starts, failures racing in-flight
//! operations, overload truncation, checkpoint timing — the paths a
//! week-long happy run never touches.

use eards::prelude::*;

fn job(id: u64, submit_secs: u64, cpu: u32, dur_secs: u64, factor: f64) -> Job {
    Job::new(
        JobId(id),
        SimTime::from_secs(submit_secs),
        Cpu(cpu),
        Mem::gib(1),
        SimDuration::from_secs(dur_secs),
        factor,
    )
}

#[test]
fn cold_start_boots_nodes_before_placing() {
    // Every node starts OFF: the controller must boot capacity, wait for
    // it, and only then place — the job pays the boot + creation latency.
    let hosts = eards::datacenter::small_datacenter(4, HostClass::Medium);
    let cfg = RunConfig {
        initial_on: 0,
        min_exec: 0,
        creation_jitter_std: 0.0,
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        Trace::new(vec![job(0, 0, 200, 300, 2.0)]),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run();
    assert_eq!(report.jobs_completed, 1);
    let done = report.jobs[0].completed.unwrap().as_secs_f64();
    // Boot (90 s) + creation (40 s) + run (300 s) ≈ 430 s.
    assert!((425.0..440.0).contains(&done), "completed at {done}");
    assert_eq!(report.jobs[0].satisfaction, 100.0, "factor 2 absorbs it");
}

#[test]
fn failure_mid_creation_recreates_elsewhere() {
    // Node 0 dies while the VM is still being created there; the VM must
    // be re-queued, re-created on another node, and still finish — and
    // the stale CreationDone event from the aborted attempt must not
    // corrupt the second attempt.
    let mut hosts = eards::datacenter::small_datacenter(2, HostClass::Medium);
    hosts[0].reliability = 0.0001; // dies almost immediately once armed
    let mut faults = FaultPlan::crashes();
    faults.mttr = SimDuration::from_hours(12); // stays dead
    let cfg = RunConfig {
        initial_on: 2,
        min_exec: 2,
        creation_jitter_std: 0.0,
        seed: 3,
        ..RunConfig::default()
    }
    .with_faults(faults);
    // Backfilling places on the emptiest-equal host deterministically
    // (host 0 first by id); host 0 fails within seconds.
    let report = Runner::new(
        hosts,
        Trace::new(vec![job(0, 0, 100, 600, 2.0)]),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run();
    assert!(report.host_failures >= 1, "the flaky node must fail");
    assert_eq!(report.jobs_completed, 1, "job survives via re-creation");
    // The job ran from scratch after the failure: completion must reflect
    // a full 600 s execution (no progress could survive — no checkpoints).
    let done = report.jobs[0].completed.unwrap().as_secs_f64();
    assert!(done >= 600.0, "completed impossibly early at {done}");
}

#[test]
fn checkpoint_preserves_progress_across_failure() {
    let mut hosts = eards::datacenter::small_datacenter(2, HostClass::Medium);
    hosts[0].reliability = 0.9; // MTTF ≈ 4.5 h with 30 min repair — patched below
    let base = RunConfig {
        initial_on: 2,
        min_exec: 2,
        creation_jitter_std: 0.0,
        seed: 11,
        ..RunConfig::default()
    }
    .with_faults(FaultPlan::crashes());
    // With checkpoints every 5 minutes, a long job on a flaky node loses
    // at most ~5 min per crash; without, it restarts from zero. Compare
    // total completion times over identical failure schedules (the
    // per-host failure RNG streams make them comparable).
    let trace = Trace::new(vec![job(0, 0, 400, 4 * 3600, 2.0)]);
    let run = |ckpt: Option<SimDuration>| {
        let cfg = RunConfig {
            checkpoint_period: ckpt,
            drain_limit: SimDuration::from_days(4),
            ..base.clone()
        };
        Runner::new(
            hosts.clone(),
            trace.clone(),
            Box::new(BackfillingPolicy::new()),
            cfg,
        )
        .run()
    };
    let with = run(Some(SimDuration::from_mins(5)));
    let without = run(None);
    assert_eq!(with.jobs_completed, 1);
    assert_eq!(without.jobs_completed, 1);
    if without.host_failures > 0 && with.host_failures > 0 {
        let t_with = with.jobs[0].completed.unwrap();
        let t_without = without.jobs[0].completed.unwrap();
        assert!(
            t_with <= t_without,
            "checkpointing must not lose more work: {t_with} vs {t_without}"
        );
    }
}

#[test]
fn job_finishing_mid_migration_completes_at_migration_end() {
    // A nearly-done VM gets migrated (DBF ignores remaining time); its
    // work completes during the transfer, and the driver must finish it
    // when the migration lands, not drop it.
    let hosts = eards::datacenter::small_datacenter(3, HostClass::Medium);
    let cfg = RunConfig {
        initial_on: 3,
        min_exec: 3,
        creation_jitter_std: 0.0,
        migration_jitter_std: 0.0,
        consolidation_period: Some(SimDuration::from_secs(30)),
        ..RunConfig::default()
    };
    // Two jobs on different hosts (RR spreads); the consolidation tick
    // then migrates one onto the other's host right as it nears its end.
    let trace = Trace::new(vec![job(0, 0, 100, 90, 2.0), job(1, 0, 300, 600, 2.0)]);
    let report = Runner::new(hosts, trace, Box::new(DynamicBackfillingPolicy::new()), cfg).run();
    assert_eq!(report.jobs_completed, 2, "no job may be lost to migration");
}

#[test]
fn drain_limit_truncates_and_records_unfinished_jobs() {
    // One node, far more work than fits before the drain limit: the run
    // must terminate anyway and report the unfinished jobs as such.
    let hosts = eards::datacenter::small_datacenter(1, HostClass::Medium);
    let jobs: Vec<Job> = (0..12).map(|i| job(i, 0, 400, 6 * 3600, 1.2)).collect();
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        drain_limit: SimDuration::from_hours(12),
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        Trace::new(jobs),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run();
    assert_eq!(report.jobs_total, 12);
    assert!(report.jobs_completed < 12, "12 × 6 h can't fit in 12 h");
    assert!(
        report.jobs_completed >= 1,
        "at least the first one finishes"
    );
    let unfinished = report.jobs.iter().filter(|j| j.completed.is_none()).count();
    assert_eq!(unfinished as u64, 12 - report.jobs_completed);
    for j in report.jobs.iter().filter(|j| j.completed.is_none()) {
        assert_eq!(j.satisfaction, 0.0, "unfinished jobs score zero");
    }
}

#[test]
fn lambda_max_100_never_boots_for_ratio() {
    // λ_max = 100%: the ratio rule can never trigger (working ≤ online),
    // so extra nodes boot only through the stuck-queue rule.
    let hosts = eards::datacenter::small_datacenter(6, HostClass::Medium);
    let jobs: Vec<Job> = (0..4).map(|i| job(i, i * 10, 400, 900, 2.0)).collect();
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        ..RunConfig::default().with_lambdas(30, 100)
    };
    let report = Runner::new(
        hosts,
        Trace::new(jobs),
        Box::new(BackfillingPolicy::new()),
        cfg,
    )
    .run();
    assert_eq!(report.jobs_completed, 4, "stuck-queue rule must still boot");
}

#[test]
fn min_exec_keeps_nodes_online_when_idle() {
    let hosts = eards::datacenter::small_datacenter(5, HostClass::Medium);
    // A single early job, then a long idle tail forced by a late job.
    let trace = Trace::new(vec![job(0, 0, 100, 60, 2.0), job(1, 7200, 100, 60, 2.0)]);
    let cfg = RunConfig {
        initial_on: 3,
        min_exec: 3,
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        trace,
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        cfg,
    )
    .run();
    // Through the 2-hour idle valley, at least min_exec nodes stay online:
    // the time-average can never drop below 3.
    assert!(
        report.avg_online_nodes >= 2.99,
        "avg online {}",
        report.avg_online_nodes
    );
}

#[test]
fn dynamic_sla_escalation_is_bounded() {
    // Overloaded node with SLA enforcement: escalated requests must never
    // exceed 1.5× demand nor the node capacity (no runaway reservations).
    let hosts = eards::datacenter::small_datacenter(1, HostClass::Medium);
    let jobs: Vec<Job> = (0..3).map(|i| job(i, 0, 200, 1200, 1.2)).collect();
    let cfg = RunConfig {
        initial_on: 1,
        min_exec: 1,
        dynamic_sla: true,
        ..RunConfig::default()
    };
    let report = Runner::new(
        hosts,
        Trace::new(jobs),
        Box::new(RandomPolicy::new(2)), // overcommits: real contention
        cfg,
    )
    .run();
    assert_eq!(report.jobs_completed, 3);
    // The run terminates and jobs complete despite escalation pressure —
    // the bound is structural (clamped in the driver); completing at all
    // is the regression signal (unbounded escalation deadlocks placement).
}
