//! Cross-crate integration: full simulations through the public facade,
//! one per policy family, over a small datacenter.

use eards::prelude::*;

fn short_trace(seed: u64) -> Trace {
    eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(8),
            ..SynthConfig::grid5000_week()
        },
        seed,
    )
}

fn policies() -> Vec<(&'static str, Box<dyn Policy>)> {
    vec![
        ("RD", Box::new(RandomPolicy::new(5))),
        ("RR", Box::new(RoundRobinPolicy::new())),
        ("BF", Box::new(BackfillingPolicy::new())),
        ("DBF", Box::new(DynamicBackfillingPolicy::new())),
        ("SB0", Box::new(ScoreScheduler::new(ScoreConfig::sb0()))),
        ("SB", Box::new(ScoreScheduler::new(ScoreConfig::sb()))),
        ("SB+ext", Box::new(ScoreScheduler::new(ScoreConfig::full()))),
    ]
}

#[test]
fn every_policy_completes_the_workload() {
    let trace = short_trace(1);
    for (name, policy) in policies() {
        let hosts = eards::datacenter::small_datacenter(10, HostClass::Medium);
        let report = Runner::new(hosts, trace.clone(), policy, RunConfig::default()).run();
        assert_eq!(
            report.jobs_total,
            trace.len() as u64,
            "{name}: all submissions accounted"
        );
        assert_eq!(
            report.jobs_completed, report.jobs_total,
            "{name}: an 8-hour workload must drain within the 2-day limit"
        );
        assert!(report.energy_kwh > 0.0, "{name}: energy recorded");
        assert!(
            (0.0..=100.0).contains(&report.satisfaction_pct),
            "{name}: S = {}",
            report.satisfaction_pct
        );
        assert!(report.delay_pct >= 0.0, "{name}");
        assert!(
            report.avg_online_nodes >= report.avg_working_nodes,
            "{name}: can't work on more nodes than are online"
        );
        assert!(
            report.creations >= report.jobs_completed,
            "{name}: every completed job was created at least once"
        );
    }
}

#[test]
fn non_migrating_policies_never_migrate() {
    let trace = short_trace(2);
    for (name, policy) in policies() {
        if policy.uses_migration() {
            continue;
        }
        let hosts = eards::datacenter::small_datacenter(8, HostClass::Fast);
        let report = Runner::new(hosts, trace.clone(), policy, RunConfig::default()).run();
        assert_eq!(report.migrations, 0, "{name} must not migrate");
    }
}

#[test]
fn consolidating_policies_use_fewer_nodes_than_spreading_ones() {
    let trace = short_trace(3);
    let run = |policy: Box<dyn Policy>| -> RunReport {
        let hosts = eards::datacenter::small_datacenter(16, HostClass::Medium);
        Runner::new(hosts, trace.clone(), policy, RunConfig::default()).run()
    };
    let rr = run(Box::new(RoundRobinPolicy::new()));
    let bf = run(Box::new(BackfillingPolicy::new()));
    let sb = run(Box::new(ScoreScheduler::new(ScoreConfig::sb())));
    assert!(
        bf.avg_working_nodes < rr.avg_working_nodes,
        "BF {} vs RR {}",
        bf.avg_working_nodes,
        rr.avg_working_nodes
    );
    assert!(
        sb.energy_kwh < rr.energy_kwh,
        "SB {} vs RR {}",
        sb.energy_kwh,
        rr.energy_kwh
    );
}

#[test]
fn tighter_lambdas_save_energy() {
    let trace = short_trace(4);
    let run = |cfg: RunConfig| -> RunReport {
        let hosts = eards::datacenter::small_datacenter(16, HostClass::Medium);
        Runner::new(
            hosts,
            trace.clone(),
            Box::new(ScoreScheduler::new(ScoreConfig::sb())),
            cfg,
        )
        .run()
    };
    let gentle = run(RunConfig::default().with_lambdas(10, 90));
    let aggressive = run(RunConfig::default().with_lambdas(50, 90));
    assert!(
        aggressive.energy_kwh < gentle.energy_kwh,
        "aggressive {} vs gentle {}",
        aggressive.energy_kwh,
        gentle.energy_kwh
    );
}

#[test]
fn empty_trace_is_a_noop_run() {
    let hosts = eards::datacenter::small_datacenter(4, HostClass::Medium);
    let report = Runner::new(
        hosts,
        Trace::new(vec![]),
        Box::new(BackfillingPolicy::new()),
        RunConfig::default(),
    )
    .run();
    assert_eq!(report.jobs_total, 0);
    assert_eq!(report.migrations, 0);
    assert_eq!(report.creations, 0);
}
