//! Heterogeneous-hardware integration: mixed node capacities and
//! hypervisors, jobs with `P_req` requirements — verifying that every
//! placement respects requirements end to end, for every policy.

use eards::model::{Cpu, Hypervisor, Mem, Requirements};
use eards::prelude::*;

fn hosts() -> Vec<HostSpec> {
    let mut specs = Vec::new();
    for i in 0..9u32 {
        let mut s = HostSpec::standard(HostId(i), HostClass::Medium);
        match i % 3 {
            0 => {
                s.cpu = Cpu::cores(8);
                s.mem = Mem::gib(32);
                s.hypervisor = Hypervisor::Kvm;
            }
            1 => {}
            _ => {
                s.cpu = Cpu::cores(2);
                s.mem = Mem::gib(8);
            }
        }
        specs.push(s);
    }
    specs
}

fn constrained_trace(seed: u64) -> Trace {
    let base = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(5),
            ..SynthConfig::grid5000_week()
        },
        seed,
    );
    let jobs: Vec<Job> = base
        .into_jobs()
        .into_iter()
        .enumerate()
        .map(|(i, mut j)| {
            j.requirements = match i % 4 {
                0 => Requirements {
                    hypervisor: Some(Hypervisor::Kvm),
                    ..Requirements::ANY
                },
                1 => Requirements {
                    hypervisor: Some(Hypervisor::Xen),
                    ..Requirements::ANY
                },
                2 => Requirements {
                    min_host_cpus: 8,
                    ..Requirements::ANY
                },
                _ => Requirements::ANY,
            };
            j
        })
        .collect();
    Trace::new(jobs)
}

#[test]
fn requirements_are_respected_by_every_policy() {
    let trace = constrained_trace(4);
    let policies: Vec<(&str, Box<dyn Policy>)> = vec![
        ("RD", Box::new(RandomPolicy::new(1))),
        ("RR", Box::new(RoundRobinPolicy::new())),
        ("BF", Box::new(BackfillingPolicy::new())),
        ("DBF", Box::new(DynamicBackfillingPolicy::new())),
        ("SB", Box::new(ScoreScheduler::new(ScoreConfig::sb()))),
    ];
    for (name, policy) in policies {
        let report = Runner::new(hosts(), trace.clone(), policy, RunConfig::default()).run();
        // Every constrained job that completed was necessarily created on
        // a satisfying host (start_creation asserts satisfies()); if a
        // violation were possible the run would have panicked. The check
        // here is that the workload is actually schedulable end to end.
        assert_eq!(
            report.jobs_completed, report.jobs_total,
            "{name}: constrained jobs must still complete"
        );
    }
}

#[test]
fn wide_jobs_only_fit_wide_nodes() {
    // A 600-cpu job fits only the 8-way KVM boxes — and must carry the
    // matching hypervisor requirement to be placeable at all.
    let mut j = Job::new(
        JobId(0),
        SimTime::ZERO,
        Cpu(600),
        Mem::gib(4),
        SimDuration::from_secs(600),
        2.0,
    );
    j.requirements = Requirements {
        hypervisor: Some(Hypervisor::Kvm),
        ..Requirements::ANY
    };
    let report = Runner::new(
        hosts(),
        Trace::new(vec![j]),
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        RunConfig {
            initial_on: 9,
            min_exec: 9,
            ..RunConfig::default()
        },
    )
    .run();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.jobs[0].satisfaction, 100.0);
}

#[test]
fn impossible_requirements_stay_queued_not_crash() {
    // No host has 16 CPUs: the job must sit in the queue until the drain
    // limit and be reported unfinished — not panic, not loop.
    let mut j = Job::new(
        JobId(0),
        SimTime::ZERO,
        Cpu(100),
        Mem::gib(1),
        SimDuration::from_secs(60),
        2.0,
    );
    j.requirements = Requirements {
        min_host_cpus: 16,
        ..Requirements::ANY
    };
    let report = Runner::new(
        hosts(),
        Trace::new(vec![j]),
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        RunConfig {
            drain_limit: SimDuration::from_hours(1),
            ..RunConfig::default()
        },
    )
    .run();
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(report.jobs_total, 1);
    assert_eq!(report.jobs[0].satisfaction, 0.0);
}

#[test]
fn power_model_rescales_for_big_nodes() {
    // An 8-way box at 400% CPU draws what the 4-way draws at 200%: the
    // calibration curve stretches with capacity.
    use eards::model::{CalibratedPowerModel, PowerModel};
    let m = CalibratedPowerModel::paper_4way();
    assert_eq!(m.power_watts(400.0, Cpu::cores(8)), 273.0);
    // End-to-end: one 8-way node running 800% of demand really is billed
    // at the top of the curve.
    let mut s = HostSpec::standard(HostId(0), HostClass::Medium);
    s.cpu = Cpu::cores(8);
    s.mem = Mem::gib(32);
    let jobs = vec![
        Job::new(
            JobId(0),
            SimTime::ZERO,
            Cpu(400),
            Mem::gib(2),
            SimDuration::from_secs(600),
            2.0,
        ),
        Job::new(
            JobId(1),
            SimTime::ZERO,
            Cpu(400),
            Mem::gib(2),
            SimDuration::from_secs(600),
            2.0,
        ),
    ];
    let report = Runner::new(
        vec![s],
        Trace::new(jobs),
        Box::new(BackfillingPolicy::new()),
        RunConfig {
            initial_on: 1,
            min_exec: 1,
            record_power_series: true,
            creation_jitter_std: 0.0,
            ..RunConfig::default()
        },
    )
    .run();
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(
        report.power_watts.max_value(),
        Some(304.0),
        "full 8-way load sits at the stretched curve's peak"
    );
}
