//! Whole-system property tests: random short workloads through the full
//! driver must always produce consistent reports, for every policy.

use proptest::prelude::*;

use eards::prelude::*;

fn run_policy(policy_idx: u8, trace_seed: u64, driver_seed: u64, hosts: u32) -> RunReport {
    let policy: Box<dyn Policy> = match policy_idx % 5 {
        0 => Box::new(RandomPolicy::new(driver_seed)),
        1 => Box::new(RoundRobinPolicy::new()),
        2 => Box::new(BackfillingPolicy::new()),
        3 => Box::new(DynamicBackfillingPolicy::new()),
        _ => Box::new(ScoreScheduler::new(ScoreConfig::sb())),
    };
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(3),
            events_per_hour: 8.0,
            ..SynthConfig::grid5000_week()
        },
        trace_seed,
    );
    let cfg = RunConfig {
        seed: driver_seed,
        initial_on: 3.min(hosts as usize),
        ..RunConfig::default()
    };
    let specs = eards::datacenter::small_datacenter(hosts, HostClass::Medium);
    Runner::new(specs, trace, policy, cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Report sanity under any (policy, workload, seed, datacenter size).
    #[test]
    fn reports_are_internally_consistent(
        policy_idx in any::<u8>(),
        trace_seed in any::<u64>(),
        driver_seed in any::<u64>(),
        hosts in 2u32..12,
    ) {
        let r = run_policy(policy_idx, trace_seed, driver_seed, hosts);
        prop_assert!(r.jobs_completed <= r.jobs_total);
        prop_assert_eq!(r.jobs.len() as u64, r.jobs_total);
        prop_assert!((0.0..=100.0).contains(&r.satisfaction_pct));
        prop_assert!(r.delay_pct >= 0.0);
        prop_assert!(r.energy_kwh >= 0.0);
        prop_assert!(r.avg_working_nodes >= 0.0);
        prop_assert!(r.avg_working_nodes <= r.avg_online_nodes + 1e-9);
        prop_assert!(r.avg_online_nodes <= f64::from(hosts) + 1e-9);
        prop_assert!(r.cpu_hours >= 0.0);
        // Every creation corresponds to a real VM event; each job needs at
        // least one creation to complete (failures may add recreations).
        prop_assert!(r.creations >= r.jobs_completed);
        // Per-job records agree with the aggregate.
        let done = r.jobs.iter().filter(|j| j.completed.is_some()).count() as u64;
        prop_assert_eq!(done, r.jobs_completed);
        for j in &r.jobs {
            prop_assert!((0.0..=100.0).contains(&j.satisfaction));
            if let Some(c) = j.completed {
                prop_assert!(c >= j.submitted);
            } else {
                prop_assert_eq!(j.satisfaction, 0.0);
            }
        }
    }

    /// Energy is never below the idle floor of the minimum online set for
    /// the measured span, and never above every-node-flat-out.
    #[test]
    fn energy_is_physically_plausible(
        policy_idx in any::<u8>(),
        trace_seed in any::<u64>(),
        hosts in 2u32..10,
    ) {
        let r = run_policy(policy_idx, trace_seed, 7, hosts);
        // Upper bound: all nodes at max draw for the whole span.
        // (span is at most 3 h of arrivals + drain of the last jobs; use a
        // generous 60 h ceiling implied by the drain limit of 2 days.)
        let max_kwh = f64::from(hosts) * 304.0 * 60.0 / 1000.0;
        prop_assert!(r.energy_kwh <= max_kwh, "energy {} impossibly high", r.energy_kwh);
        if r.jobs_total > 0 {
            prop_assert!(r.energy_kwh > 0.0);
        }
    }
}
