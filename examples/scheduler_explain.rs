//! Inside the score-based scheduler: reproduce the worked example of the
//! paper's §III-B — print the raw score matrix, the delta-normalized
//! matrix, and the moves hill climbing picks, for a small hand-built
//! situation.
//!
//! Run with: `cargo run --release --example scheduler_explain`

use eards::core::{render_delta_matrix, render_matrix, solve, Eval, ScoreConfig};
use eards::prelude::*;

fn main() {
    // A small datacenter mid-flight: three hosts (one fast, two medium),
    // two running VMs spread across two hosts, two new VMs in the queue.
    let mut cluster = Cluster::new(
        vec![
            HostSpec::standard(HostId(0), HostClass::Fast),
            HostSpec::standard(HostId(1), HostClass::Medium),
            HostSpec::standard(HostId(2), HostClass::Medium),
        ],
        PowerState::On,
    );
    let t0 = SimTime::ZERO;
    let t40 = SimTime::from_secs(40);
    let place = |cluster: &mut Cluster, id: u64, cpu: u32, host: HostId| {
        let vm = cluster.submit_job(Job::new(
            JobId(id),
            t0,
            Cpu(cpu),
            Mem::gib(1),
            SimDuration::from_secs(6000),
            1.5,
        ));
        cluster.start_creation(vm, host, t0, t40);
        cluster.finish_creation(vm, t40);
        vm
    };
    let vm0 = place(&mut cluster, 0, 200, HostId(1)); // running on h1
    let vm1 = place(&mut cluster, 1, 100, HostId(2)); // lonely on h2
    let vm2 = cluster.submit_job(Job::new(
        JobId(2),
        t40,
        Cpu(100),
        Mem::gib(1),
        SimDuration::from_secs(1200),
        1.5,
    ));
    let vm3 = cluster.submit_job(Job::new(
        JobId(3),
        t40,
        Cpu(300),
        Mem::gib(2),
        SimDuration::from_secs(3600),
        1.2,
    ));

    let cfg = ScoreConfig::sb();
    let now = SimTime::from_secs(100);
    let mut eval = Eval::new(&cluster, &cfg, now, vec![vm0, vm1, vm2, vm3]);

    println!("situation: vm0 (200%) on h1, vm1 (100%) on h2, vm2 (100%) and vm3 (300%) queued\n");
    println!("score matrix (cost of holding each VM on each host, §III-A):\n");
    println!("{}", render_matrix(&eval).to_markdown());
    println!("delta matrix (cell − current-host cost; negative = improvement, §III-B):\n");
    println!("{}", render_delta_matrix(&eval).to_markdown());

    let sol = solve(&mut eval, cfg.max_moves);
    println!(
        "hill climbing applied {} moves (in order):",
        sol.moves.len()
    );
    for (i, &(v, h)) in sol.moves.iter().enumerate() {
        let vm = eval.vms()[v];
        let verb = if eval.original_of(v).is_none() {
            "create"
        } else {
            "migrate"
        };
        println!("  {}. {verb} {vm} → h{h}", i + 1);
    }
    println!("\nfinal hypothetical state:");
    println!("{}", render_delta_matrix(&eval).to_markdown());
    println!(
        "every remaining negative cell is below the migration hysteresis \
         (min gain = {}); the matrix is settled.",
        cfg.min_migration_gain
    );
}
