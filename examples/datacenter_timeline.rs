//! Watch a datacenter think: run a short busy morning with the audit log
//! enabled and print the full timeline of scheduler decisions — arrivals,
//! placements, migrations, node power transitions, completions.
//!
//! Run with: `cargo run --release --example datacenter_timeline`

use eards::datacenter::{render_log, AuditKind};
use eards::prelude::*;

fn main() {
    let hosts = eards::datacenter::small_datacenter(6, HostClass::Medium);
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(2),
            events_per_hour: 6.0,
            ..SynthConfig::grid5000_week()
        },
        13,
    );
    let cfg = RunConfig {
        initial_on: 2,
        min_exec: 1,
        audit: true,
        consolidation_period: Some(SimDuration::from_mins(10)),
        ..RunConfig::default()
    };
    let (report, audit) = Runner::new(
        hosts,
        trace,
        Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        cfg,
    )
    .run_audited();

    println!("{}", render_log(&audit));
    println!("--- {} events ---", audit.len());

    // A small tally of what the datacenter did.
    let count = |f: fn(&AuditKind) -> bool| audit.iter().filter(|e| f(&e.kind)).count();
    println!(
        "placements: {}  migrations: {}  boots: {}  shutdowns: {}  completions: {}",
        count(|k| matches!(k, AuditKind::CreationStarted { .. })),
        count(|k| matches!(k, AuditKind::MigrationStarted { .. })),
        count(|k| matches!(k, AuditKind::HostPoweringOn { .. })),
        count(|k| matches!(k, AuditKind::HostPoweringOff { .. })),
        count(|k| matches!(k, AuditKind::JobCompleted { .. })),
    );
    println!(
        "result: {:.1} kWh, S = {:.1}%, {} jobs",
        report.energy_kwh, report.satisfaction_pct, report.jobs_total
    );
}
