//! The paper's headline scenario end to end: a week of Grid5000-like load
//! on the 100-node datacenter of §V, comparing plain Backfilling against
//! the score-based scheduler at both λ settings — and reporting the power
//! saving at matched SLA, the way §V-D does.
//!
//! Run with: `cargo run --release --example week_in_the_datacenter`

use eards::datacenter::paper_datacenter;
use eards::metrics::pct_change;
use eards::prelude::*;

fn main() {
    let trace = eards::workload::generate(&SynthConfig::grid5000_week(), 7);
    let stats = trace.stats();
    println!(
        "one week of load: {} jobs, {:.0} CPU·hours (≈ {:.1} busy cores on average)\n",
        stats.jobs, stats.total_cpu_hours, stats.avg_offered_cores
    );

    let mut reports = Vec::new();
    let runs: [(&str, Box<dyn Policy>, RunConfig); 3] = [
        (
            "BF λ30-90",
            Box::new(BackfillingPolicy::new()),
            RunConfig::default(),
        ),
        (
            "SB λ30-90",
            Box::new(ScoreScheduler::new(ScoreConfig::sb())),
            RunConfig::default(),
        ),
        (
            "SB λ40-90",
            Box::new(ScoreScheduler::new(ScoreConfig::sb())),
            RunConfig::default().with_lambdas(40, 90),
        ),
    ];
    for (label, policy, cfg) in runs {
        #[allow(clippy::disallowed_methods)]
        // lint:allow(D002): example times its own wall-clock run, not sim state
        let t0 = std::time::Instant::now();
        let report = Runner::new(paper_datacenter(), trace.clone(), policy, cfg)
            .labeled(label)
            .run();
        println!("{label}: simulated the week in {:.1?}", t0.elapsed());
        reports.push(report);
    }

    println!("\n{}", RunReport::table(&reports).to_markdown());

    let bf = &reports[0];
    let sb_tuned = &reports[2];
    println!(
        "score-based scheduling at λ40-90 uses {:.1}% {} energy than Backfilling \
         (paper: −15%), at {:.1}% vs {:.1}% client satisfaction",
        pct_change(bf.energy_kwh, sb_tuned.energy_kwh).abs(),
        if sb_tuned.energy_kwh < bf.energy_kwh {
            "less"
        } else {
            "more"
        },
        sb_tuned.satisfaction_pct,
        bf.satisfaction_pct,
    );
}
