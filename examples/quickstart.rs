//! Quickstart: simulate six hours of grid load on a small virtualized
//! datacenter under the paper's score-based scheduler, and print the
//! energy / SLA report.
//!
//! Run with: `cargo run --release --example quickstart`

use eards::prelude::*;

fn main() {
    // 1. A datacenter: eight 4-way Xen nodes of the paper's "medium"
    //    overhead class (VM creation 40 s, migration 60 s).
    let hosts = eards::datacenter::small_datacenter(8, HostClass::Medium);

    // 2. A workload: six hours of synthetic Grid5000-like arrivals.
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(6),
            ..SynthConfig::grid5000_week()
        },
        42,
    );
    println!(
        "workload: {} jobs, {:.1} CPU·hours offered",
        trace.len(),
        trace.stats().total_cpu_hours
    );

    // 3. The paper's policy: score-based scheduling with all overhead
    //    penalties and migration (the "SB" configuration of Table IV).
    let policy = Box::new(ScoreScheduler::new(ScoreConfig::sb()));

    // 4. Simulate. RunConfig::default() is the paper's balanced setting:
    //    λ_min = 30 %, λ_max = 90 %, creation jitter N(µ, 2.5 s).
    let report = Runner::new(hosts, trace, policy, RunConfig::default()).run();

    // 5. The numbers the paper's tables report.
    println!(
        "{}",
        RunReport::table(std::slice::from_ref(&report)).to_markdown()
    );
    println!(
        "energy {:.1} kWh | satisfaction {:.1}% | {} migrations | avg {:.1} nodes working",
        report.energy_kwh, report.satisfaction_pct, report.migrations, report.avg_working_nodes
    );
}
