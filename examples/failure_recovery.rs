//! Fault tolerance in action: a datacenter with flaky nodes, failure
//! injection, periodic checkpointing, and the `P_fault`-aware score
//! scheduler — the extension machinery §III-A.6 and §III-C describe and
//! the paper leaves to future work.
//!
//! Run with: `cargo run --release --example failure_recovery`

use eards::prelude::*;

fn flaky_hosts() -> Vec<HostSpec> {
    (0..20u32)
        .map(|i| {
            let mut spec = HostSpec::standard(HostId(i), HostClass::Medium);
            if i % 4 == 0 {
                spec.reliability = 0.93; // ~0.4 h MTTF with a 30 min repair
            }
            spec
        })
        .collect()
}

fn run_variant(label: &str, fault_penalty: bool, checkpoints: bool) -> RunReport {
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_days(1),
            ..SynthConfig::grid5000_week()
        },
        11,
    );
    let mut score_cfg = ScoreConfig::sb().named(label);
    score_cfg.fault_penalty = fault_penalty;
    let cfg = RunConfig {
        checkpoint_period: checkpoints.then(|| SimDuration::from_mins(10)),
        ..RunConfig::default()
    }
    // Reliability-driven host crashes, repaired after the default 30 min.
    .with_faults(FaultPlan::crashes());
    Runner::new(
        flaky_hosts(),
        trace,
        Box::new(ScoreScheduler::new(score_cfg)),
        cfg,
    )
    .run()
}

fn main() {
    println!(
        "20-node datacenter, every fourth node flaky (reliability 0.93); one \
         day of load; failures injected from each node's reliability factor.\n"
    );
    let variants = [
        ("reliability-blind", false, false),
        ("P_fault aware", true, false),
        ("P_fault + checkpoints", true, true),
    ];
    let mut table = Table::new([
        "variant",
        "host failures",
        "VMs displaced",
        "jobs done",
        "S (%)",
        "delay (%)",
        "Pwr (kWh)",
    ]);
    for (label, fault, ckpt) in variants {
        let r = run_variant(label, fault, ckpt);
        table.row([
            label.to_string(),
            r.host_failures.to_string(),
            r.vms_displaced.to_string(),
            format!("{}/{}", r.jobs_completed, r.jobs_total),
            format!("{:.1}", r.satisfaction_pct),
            format!("{:.1}", r.delay_pct),
            format!("{:.1}", r.energy_kwh),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "P_fault keeps VMs off flaky nodes when reliable capacity exists; \
         checkpoints bound the work a crash destroys to one interval."
    );
}
