//! A heterogeneous datacenter: mixed node sizes (2-, 4- and 8-way),
//! mixed hypervisors (Xen and KVM), and jobs with hardware/software
//! requirements — the `P_req` machinery of §III-A.1 and the paper's claim
//! that the approach "is also extensible to heterogeneous applications".
//!
//! Run with: `cargo run --release --example heterogeneous_cloud`

use eards::model::{Cpu, Hypervisor, Requirements};
use eards::prelude::*;

fn heterogeneous_hosts() -> Vec<HostSpec> {
    let mut specs = Vec::new();
    for i in 0..12u32 {
        let mut s = HostSpec::standard(HostId(i), HostClass::Medium);
        match i % 3 {
            // Four big 8-way KVM boxes.
            0 => {
                s.cpu = Cpu::cores(8);
                s.mem = eards::model::Mem::gib(32);
                s.hypervisor = Hypervisor::Kvm;
            }
            // Four standard 4-way Xen nodes (the paper's machine).
            1 => {}
            // Four small 2-way Xen nodes.
            _ => {
                s.cpu = Cpu::cores(2);
                s.mem = eards::model::Mem::gib(8);
                s.class = HostClass::Fast;
            }
        }
        specs.push(s);
    }
    specs
}

fn main() {
    // A synthetic day of load where a third of the jobs insist on a
    // hypervisor: KVM-only images and Xen-only images.
    let base = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_hours(12),
            ..SynthConfig::grid5000_week()
        },
        21,
    );
    let jobs: Vec<Job> = base
        .into_jobs()
        .into_iter()
        .enumerate()
        .map(|(i, mut j)| {
            j.requirements = match i % 3 {
                0 => Requirements {
                    hypervisor: Some(Hypervisor::Kvm),
                    ..Requirements::ANY
                },
                1 => Requirements {
                    hypervisor: Some(Hypervisor::Xen),
                    ..Requirements::ANY
                },
                _ => Requirements::ANY,
            };
            j
        })
        .collect();
    let trace = Trace::new(jobs);
    println!(
        "12 heterogeneous nodes (8-way KVM / 4-way Xen / 2-way Xen), {} jobs, \
         2/3 with hypervisor requirements\n",
        trace.len()
    );

    let mut reports = Vec::new();
    let contenders: [(&str, Box<dyn Policy>); 2] = [
        ("BF", Box::new(BackfillingPolicy::new())),
        ("SB", Box::new(ScoreScheduler::new(ScoreConfig::sb()))),
    ];
    for (label, policy) in contenders {
        let report = Runner::new(
            heterogeneous_hosts(),
            trace.clone(),
            policy,
            RunConfig::default(),
        )
        .labeled(label)
        .run();
        reports.push(report);
    }
    println!("{}", RunReport::table(&reports).to_markdown());
    println!(
        "all placements respected the hypervisor requirements (the drivers \
         validate P_req on every creation and migration); the 8-way boxes \
         absorb the KVM jobs while the score-based policy still consolidates \
         the Xen fleet."
    );
}
