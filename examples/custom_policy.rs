//! Extending EARDS with your own scheduling policy.
//!
//! The paper argues its matrix formulation "lends itself easily to
//! extension" (§VI); on the library side, every scheduler is just an
//! implementation of [`Policy`]. This example writes a first-fit policy
//! from scratch against the public API and races it against the built-in
//! Backfilling and score-based schedulers.
//!
//! Run with: `cargo run --release --example custom_policy`

use eards::prelude::*;

/// First-fit: each queued VM goes to the lowest-numbered powered-on host
/// where it fits without overcommitting. Simpler than Backfilling (no
/// best-fit search) — and measurably worse at consolidating.
struct FirstFitPolicy;

impl Policy for FirstFitPolicy {
    fn name(&self) -> String {
        "FirstFit".into()
    }

    fn schedule(&mut self, cluster: &Cluster, _ctx: &ScheduleContext) -> Vec<Action> {
        let mut actions = Vec::new();
        // Track capacity we have already promised in this round.
        let mut planned: Vec<f64> = (0..cluster.num_hosts())
            .map(|i| {
                let h = HostId(i as u32);
                cluster.committed(h).cpu.as_f64()
            })
            .collect();
        for &vm in cluster.queue() {
            let demand = cluster.vm(vm).requested.cpu.as_f64();
            let target = (0..cluster.num_hosts())
                .map(|i| HostId(i as u32))
                .find(|&h| {
                    cluster.host(h).power.is_ready()
                        && cluster.can_place(h, vm)
                        && planned[h.raw() as usize] + demand <= cluster.host(h).spec.cpu.as_f64()
                });
            if let Some(host) = target {
                planned[host.raw() as usize] += demand;
                actions.push(Action::Create { vm, host });
            }
        }
        actions
    }
}

fn main() {
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_days(2),
            ..SynthConfig::grid5000_week()
        },
        3,
    );
    let hosts = eards::datacenter::paper_datacenter();

    let mut reports = Vec::new();
    let contenders: [(&str, Box<dyn Policy>); 3] = [
        ("FirstFit", Box::new(FirstFitPolicy)),
        ("BF", Box::new(BackfillingPolicy::new())),
        ("SB", Box::new(ScoreScheduler::new(ScoreConfig::sb()))),
    ];
    for (label, policy) in contenders {
        let report = Runner::new(hosts.clone(), trace.clone(), policy, RunConfig::default())
            .labeled(label)
            .run();
        reports.push(report);
    }
    println!("{}", RunReport::table(&reports).to_markdown());
    println!(
        "first-fit fills the lowest-numbered hosts but ignores how full each \
         one is; best-fit (BF) packs tighter, and the score-based scheduler \
         additionally weighs virtualization overheads and migration."
    );
}
