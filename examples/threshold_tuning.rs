//! Provider decision support: sweep the (λ_min, λ_max) on/off thresholds
//! in parallel (the Figure 2/3 experiment) and pick the most
//! energy-efficient setting that still clears an SLA floor — the
//! trade-off resolution §V-A describes ("whose resolution will eventually
//! depend on the provider's interests").
//!
//! Run with: `cargo run --release --example threshold_tuning [sla_floor]`

use eards::datacenter::{lambda_grid, paper_datacenter, run_sweep};
use eards::prelude::*;

fn main() {
    let sla_floor: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(99.0);

    // A shorter trace keeps the example snappy; the bench binary
    // `fig2_3_threshold_sweep` runs the full week.
    let trace = eards::workload::generate(
        &SynthConfig {
            span: SimDuration::from_days(2),
            ..SynthConfig::grid5000_week()
        },
        7,
    );
    let hosts = paper_datacenter();
    let points = lambda_grid(
        &RunConfig::default(),
        &[10, 20, 30, 40, 50, 60],
        &[50, 60, 70, 80, 90, 100],
    );
    let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    println!(
        "sweeping {} (λ_min, λ_max) settings in parallel ...",
        points.len()
    );

    #[allow(clippy::disallowed_methods)]
    // lint:allow(D002): example times its own wall-clock run, not sim state
    let t0 = std::time::Instant::now();
    let reports = run_sweep(
        &hosts,
        &trace,
        || Box::new(ScoreScheduler::new(ScoreConfig::sb())),
        points,
    );
    println!("swept in {:.1?}\n", t0.elapsed());

    let mut table = Table::new(["setting", "Pwr (kWh)", "S (%)", "meets floor"]);
    let mut best: Option<&RunReport> = None;
    for (label, r) in labels.iter().zip(&reports) {
        let meets = r.satisfaction_pct >= sla_floor;
        table.row([
            label.clone(),
            format!("{:.1}", r.energy_kwh),
            format!("{:.2}", r.satisfaction_pct),
            if meets { "yes" } else { "no" }.to_string(),
        ]);
        if meets && best.is_none_or(|b| r.energy_kwh < b.energy_kwh) {
            best = Some(r);
        }
    }
    println!("{}", table.to_markdown());

    match best {
        Some(r) => println!(
            "recommendation for an SLA floor of {sla_floor}%: {} \
             ({:.1} kWh at {:.2}% satisfaction)",
            r.label, r.energy_kwh, r.satisfaction_pct
        ),
        None => println!(
            "no setting in the sweep reaches {sla_floor}% satisfaction — \
             lower the floor or grow the datacenter"
        ),
    }
}
