//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with non-poisoning, non-`Result` lock methods.
//! Backed by the std primitives with poisoning unwrapped away (parking_lot
//! has no poisoning; on panic-while-locked we propagate the inner data
//! anyway, matching its semantics closely enough for worker pools). The
//! build environment has no access to crates.io, so the real crate is
//! replaced by this vendored implementation via `[patch.crates-io]`.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock whose methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
