//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! scoped threads. Backed by `std::thread::scope` (stabilized long after
//! crossbeam popularized the pattern), wrapped to present crossbeam's
//! `scope(|s| { s.spawn(|_| ..) })` shape, including the `Result` return
//! (with `std::thread::scope` panics propagate on join, so the `Err` arm
//! is never actually constructed). The build environment has no access to
//! crates.io, so the real crate is replaced by this vendored
//! implementation via `[patch.crates-io]`.

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to each spawned
/// thread's closure (crossbeam lets workers spawn siblings; most callers
/// ignore it with `|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope again.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which threads borrowing from the environment
/// can be spawned; all are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let result = super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    for &x in chunk {
                        counter.fetch_add(x, Ordering::Relaxed);
                    }
                });
            }
            7
        })
        .expect("no panics");
        assert_eq!(result, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
