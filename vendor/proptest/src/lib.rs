//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate is
//! replaced with this vendored implementation via `[patch.crates-io]`.
//! It supports the API surface the workspace's property tests exercise:
//!
//! * the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) }`
//!   macro form,
//! * `any::<T>()` for primitive integers and `bool`,
//! * integer / float range strategies and tuple strategies,
//! * `Just`, `.prop_map(..)`, `prop_oneof![w => s, ..]`,
//! * `proptest::collection::vec(strat, len_range)`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is **no shrinking** — a failing case panics
//! with its inputs Debug-printed, which is enough to reproduce since the
//! generator is fully deterministic (a fixed per-case seed; no ambient
//! entropy).

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator state for one test case (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` — a pure function of the
        /// case index, so every run explores the same inputs.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0xE4D5_, // distinct stream per case via the mix below
            }
            .mixed(case)
        }

        fn mixed(mut self, case: u64) -> Self {
            self.state = self
                .state
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(case.wrapping_mul(0xA24B_AED4_963E_E407));
            self.next_u64();
            self
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Combinators over strategies (blanket-implemented).
    pub trait StrategyExt: Strategy + Sized {
        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy> StrategyExt for S {}

    /// Object-safe strategy erasure.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    /// Object-safe mirror of [`Strategy`].
    pub trait DynStrategy<V> {
        /// Draws one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`StrategyExt::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from weighted arms. Panics if empty or all-zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut x = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if x < w {
                    return s.generate(rng);
                }
                x -= w;
            }
            self.arms.last().expect("non-empty").1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, StrategyExt};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assertion inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(( $weight as u32, $crate::strategy::StrategyExt::boxed($strat) )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $(1 => $strat),+ ]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..17,
            b in -5i64..5,
            f in -1.0f64..1.0,
            v in crate::collection::vec(0u8..4, 0..6),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                3 => (0u64..10).prop_map(|n| n * 2),
                1 => Just(99u64),
            ],
        ) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        let mut c = crate::test_runner::TestRng::for_case(6);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
