//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses. The build environment has no access to crates.io,
//! so the real crate is replaced with this vendored implementation via
//! `[patch.crates-io]`.
//!
//! Measurement model: each benchmark routine is warmed up briefly, then
//! timed over adaptively-sized batches until a wall-clock budget is spent;
//! the mean per-iteration time is printed as
//! `bench: <group>/<id> ... <mean> per iter (<iters> iters)`. There are no
//! statistical comparisons or HTML reports — this is a timing harness, not
//! a statistics package — but the numbers are stable enough for the
//! order-of-magnitude regression tracking `BENCH_*.json` baselines need.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives one benchmark routine's iterations.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    iters_done: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    ///
    /// Two phases. *Warmup* runs untimed batches for a slice of the
    /// budget, refining a per-iteration estimate while caches, branch
    /// predictors and the allocator settle — a single warmup call (the
    /// previous scheme) left the first measured batches cold, which was
    /// enough to invert adjacent points of a parameter sweep whose true
    /// difference is a few percent. *Measurement* then runs fixed-size
    /// batches (sized from the warmed estimate) so every recorded batch
    /// has the same shape; the mean is taken over those alone.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        let mut per_iter = t0.elapsed().max(Duration::from_nanos(20));

        // Warmup: at least 20 ms or a fifth of the budget, whichever is
        // larger, in ~5 ms batches that keep refining the estimate.
        let warmup = (self.budget / 5).max(Duration::from_millis(20));
        let mut warm_spent = per_iter;
        while warm_spent < warmup {
            let batch =
                (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20);
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            warm_spent += elapsed;
            per_iter = (elapsed / batch as u32).max(Duration::from_nanos(20));
        }

        // Measurement: identical ~10 ms batches until the budget is spent.
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch as u64;
        }
        self.mean_secs = total.as_secs_f64() / iters as f64;
        self.iters_done = iters;
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(group: &str, id: &str, budget: Duration, f: impl FnOnce(&mut Bencher)) -> f64 {
    let mut b = Bencher {
        mean_secs: 0.0,
        iters_done: 0,
        budget,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench: {label:<48} {:>12} per iter ({} iters)",
        fmt_duration(b.mean_secs),
        b.iters_done
    );
    b.mean_secs
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.budget = time.min(Duration::from_secs(2));
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mean = run_one(&self.name, &id.id, self.criterion.budget, |bencher| {
            f(bencher, input)
        });
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.id), mean));
        self
    }

    /// Benchmarks a plain routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mean = run_one(&self.name, &id.id, self.criterion.budget, |b| f(b));
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.id), mean));
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    budget: Duration,
    /// `(label, mean seconds per iteration)` for everything run so far.
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep CI runs quick: a fraction of a second per benchmark gives
        // better-than-10% stability for the µs-to-ms routines measured here.
        let budget = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300));
        Criterion {
            budget,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a plain routine outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mean = run_one("", id, self.budget, |b| f(b));
        self.results.push((id.to_string(), mean));
        self
    }

    /// All `(label, mean seconds)` results recorded so far — lets bench
    /// binaries emit machine-readable baselines (e.g. `BENCH_solver.json`).
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.budget = Duration::from_millis(10);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].0, "g/4");
        assert!(c.results().iter().all(|(_, m)| *m > 0.0));
    }
}
