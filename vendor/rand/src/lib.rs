//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `SmallRng` (xoshiro256++), the `RngCore` / `SeedableRng` traits,
//! and `Rng::gen` / `Rng::gen_range` for the handful of types the
//! simulator samples. The build environment has no access to crates.io,
//! so the real crate is replaced by this vendored implementation via
//! `[patch.crates-io]`; the algorithms match rand 0.8's `SmallRng` on
//! 64-bit platforms (SplitMix64 seeding + xoshiro256++), keeping streams
//! deterministic and statistically sound for the simulator's tests.

/// Core trait of random number generators: a source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at random" by [`Rng::gen`] (the stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for serialization. Restoring via
        /// [`SmallRng::from_state`] continues the stream exactly where it
        /// left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        ///
        /// The all-zero state is a fixed point of xoshiro and cannot be
        /// produced by [`SmallRng::state`] (seeding maps it away); it is
        /// remapped exactly as `from_seed` does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng { s: [1, 2, 3, 4] };
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro.
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_and_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
